"""End-to-end daemon tests over real sockets (in-process server).

Covers the verb surface, handle semantics, session isolation and GC,
overload refusal, and the stats/health snapshots.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time

import pytest

from repro.fsm.benchmarks import comm_controller, counter
from repro.fsm.blif import write_blif
from repro.serve import MAX_LINE, Client, ClientTimeout, ServerError

BACKENDS = ("object", "array")


def _wait_for(predicate, timeout=10.0, what="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError(f"timed out waiting for {what}")
        time.sleep(0.01)


@pytest.fixture(params=BACKENDS)
def server(request, server_factory):
    return server_factory(backend=request.param, workers=2)


@pytest.fixture
def client(server, client_factory):
    return client_factory(server.port)


def test_greeting_advertises_protocol_and_backend(server, client):
    assert client.greeting["serve"] == "repro"
    assert client.greeting["protocol"] == 1
    assert client.greeting["backend"] == server.server.backend
    assert client.session.startswith("s")


def test_var_apply_ite_roundtrip(client):
    a = client.var("a")
    b = client.var("b")
    c = client.var("c")
    f = client.apply("and", a, b)
    g = client.apply("or", f, c)
    h = client.ite(a, b, c)
    assert client.count(g, nvars=3)["sat_count"] == 5
    assert client.count(h, nvars=3)["sat_count"] == 4
    assert client.apply("leq", f, g) is True
    assert client.apply("leq", g, f) is False


def test_var_is_idempotent_and_reports_fresh(client):
    first = client.call("var", {"name": "a"})
    again = client.call("var", {"name": "a"})
    assert first["fresh"] is True
    assert again["fresh"] is False
    assert first["handle"] == again["handle"]
    assert first["level"] == again["level"]


def test_handles_deduplicate_by_canonicity(client):
    """Equal functions get equal handle strings (ROBDD canonicity)."""
    a = client.var("a")
    b = client.var("b")
    left = client.apply("and", a, b)
    right = client.apply("and", b, a)
    assert left == right
    demorgan = client.apply("not", client.apply(
        "or", client.apply("not", a), client.apply("not", b)))
    assert demorgan == left


def test_constant_results_are_flagged(client):
    a = client.var("a")
    taut = client.call("apply", {"op": "or", "f": a,
                                 "g": client.apply("not", a)})
    contra = client.call("apply", {"op": "and", "f": a,
                                   "g": client.apply("not", a)})
    assert taut["constant"] is True and taut["nodes"] == 0
    assert contra["constant"] is False and contra["nodes"] == 0


def test_minterms_enumeration(client):
    a = client.var("a")
    b = client.var("b")
    f = client.apply("xor", a, b)
    minterms = client.minterms(f, names=["a", "b"])
    assert sorted(minterms, key=lambda m: (m["a"], m["b"])) == [
        {"a": False, "b": True}, {"a": True, "b": False}]


def test_minterms_refuses_wide_enumeration(client):
    a = client.var("a")
    with pytest.raises(ServerError) as excinfo:
        client.minterms(a, names=[f"v{i}" for i in range(20)])
    assert excinfo.value.code == "bad-request"


def test_approx_and_decomp_verbs(client):
    variables = [client.var(f"x{i}") for i in range(6)]
    f = variables[0]
    for v in variables[1:]:
        f = client.apply("xor", f, v)
    approx = client.approx("hb", f, threshold=3)
    # Under-approximation: result implies f, density reported.
    assert client.apply("leq", approx["handle"], f) is True
    assert 0.0 <= approx["density"] <= 1.0
    assert approx["exact"] == (approx["handle"] == f)

    decomp = client.decomp("cofactor", f)
    g, h = decomp["g"]["handle"], decomp["h"]["handle"]
    assert client.apply("and", g, h) == f  # conjunctive: g & h == f


def test_unknown_approx_method_is_bad_request(client):
    a = client.var("a")
    with pytest.raises(ServerError) as excinfo:
        client.approx("nope", a)
    assert excinfo.value.code == "bad-request"


def test_unknown_verb_error(client):
    with pytest.raises(ServerError) as excinfo:
        client.call("frobnicate")
    assert excinfo.value.code == "unknown-verb"
    # The error names the known verbs to help a confused client.
    assert "apply" in excinfo.value.message


def test_bad_handle_error(client):
    with pytest.raises(ServerError) as excinfo:
        client.count("h999")
    assert excinfo.value.code == "bad-handle"


def test_malformed_request_keeps_connection_usable(client):
    client._file.write(b"this is not json\n")
    client._file.flush()
    response = client._read_message()
    assert response["ok"] is False
    assert response["error"]["code"] == "bad-request"
    assert client.var("a")  # connection still works


def test_request_id_is_echoed_verbatim(client):
    client._file.write(json.dumps(
        {"id": ["compound", 1], "verb": "health"}).encode() + b"\n")
    client._file.flush()
    response = client._read_message()
    assert response["id"] == ["compound", 1]
    assert response["ok"] is True


def test_release_drops_handle(client):
    a = client.var("a")
    b = client.var("b")
    f = client.apply("and", a, b)
    assert client.release(f) is True
    assert client.release(f) is False  # already gone
    with pytest.raises(ServerError) as excinfo:
        client.count(f)
    assert excinfo.value.code == "bad-handle"
    # Recomputing re-interns under a fresh handle id.
    again = client.apply("and", a, b)
    assert again != f
    assert client.count(again, nvars=2)["sat_count"] == 1


def test_check_verb_reports_clean_graph(client):
    a = client.var("a")
    client.apply("xor", a, client.var("b"))
    result = client.check()
    assert result["ok"] is True
    assert result["diagnostics"] == []


def test_reach_verb_counter(client):
    blif = write_blif(counter(3))
    result = client.reach(blif)
    assert result["method"] == "bfs"
    assert result["complete"] is True
    assert result["states"] == 8
    assert result["iterations"] >= 1
    assert result["aborts"] == 0


def test_reach_high_density_matches_bfs(client):
    blif = write_blif(counter(3))
    bfs = client.reach(blif)
    hd = client.reach(blif, method="hb", threshold=64)
    assert hd["complete"] is True
    assert hd["states"] == bfs["states"]


def test_reach_rejects_bad_blif(client):
    with pytest.raises(ServerError) as excinfo:
        client.reach(".broken\n")
    assert excinfo.value.code == "bad-request"


def test_reach_verb_sharded_matches_sequential(client):
    blif = write_blif(comm_controller(3))
    sequential = client.reach(blif)
    sharded = client.reach(blif, shards=2, shard_min_frontier=0)
    for key in ("states", "iterations", "reached_nodes", "complete"):
        assert sharded[key] == sequential[key], key
    assert sharded["shards"] == 2
    assert sharded["shard_images"] > 0
    assert sharded["fallbacks"] == 0
    assert "shards" not in sequential


def test_reach_rejects_bad_shard_params(client):
    blif = write_blif(counter(3))
    for params in ({"shards": 0}, {"shards": "two"},
                   {"shards": 2, "shard_selector": "nope"}):
        with pytest.raises(ServerError) as excinfo:
            client.reach(blif, **params)
        assert excinfo.value.code == "bad-request"


def test_hung_server_raises_client_timeout():
    """A server that accepts but never answers must not hang the
    client: the greeting read trips ``read_timeout``."""
    listener = socket.socket()
    held = []
    try:
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)

        def hold():
            conn, _ = listener.accept()
            held.append(conn)
            time.sleep(30)

        threading.Thread(target=hold, daemon=True).start()
        start = time.monotonic()
        with pytest.raises(ClientTimeout) as excinfo:
            Client(port=listener.getsockname()[1], read_timeout=0.5)
        assert time.monotonic() - start < 10
        assert excinfo.value.seconds == 0.5
        assert isinstance(excinfo.value, ConnectionError)
    finally:
        for conn in held:
            conn.close()
        listener.close()


def test_read_timeout_defaults_to_timeout(server):
    with Client(port=server.port, timeout=30.0) as c:
        assert c.read_timeout == 30.0
        assert c._sock.gettimeout() == 30.0
    with Client(port=server.port, timeout=30.0, read_timeout=5.0) as c:
        assert c.read_timeout == 5.0
        assert c._sock.gettimeout() == 5.0
        assert c.count(c.var("a"))["sat_count"] == 1


def test_sessions_are_isolated(server, client_factory):
    c1 = client_factory(server.port)
    c2 = client_factory(server.port)
    assert c1.session != c2.session
    a1 = c1.var("a")
    # Handle ids are per-session: h1 on c2 does not exist until made.
    with pytest.raises(ServerError) as excinfo:
        c2.count(a1)
    assert excinfo.value.code == "bad-handle"
    a2 = c2.var("a")
    b2 = c2.var("b")
    c2.apply("and", a2, b2)
    # c1's manager never saw "b".
    assert c1.count(c1.var("a"))["support"] == ["a"]
    stats1 = c1.stats()["session"]
    stats2 = c2.stats()["session"]
    assert stats1["id"] != stats2["id"]
    assert stats2["handles"] >= 3


def test_session_gc_on_disconnect(server, client_factory):
    daemon = server.server
    client = client_factory(server.port)
    client.var("a")
    _wait_for(lambda: daemon.num_sessions == 1, what="session open")
    client.close()
    _wait_for(lambda: daemon.num_sessions == 0, what="session GC")
    _wait_for(lambda: daemon.stats.sessions_closed == 1,
              what="close accounting")


def test_overload_refusal_and_recovery(server_factory, client_factory):
    handle = server_factory(backend="object", max_sessions=2)
    keep = [client_factory(handle.port) for _ in range(2)]
    with pytest.raises(ServerError) as excinfo:
        Client(port=handle.port, connect_timeout=2.0)
    assert excinfo.value.code == "overload"
    # Freeing a slot lets the next connection in.
    keep[0].close()
    _wait_for(lambda: handle.server.num_sessions == 1,
              what="slot release")
    replacement = client_factory(handle.port)
    assert replacement.var("a")
    assert handle.server.stats.sessions_rejected == 1


def test_oversized_line_closes_connection(server):
    with socket.create_connection(("127.0.0.1", server.port),
                                  timeout=10) as sock:
        stream = sock.makefile("rwb")
        stream.readline()  # greeting
        stream.write(b"x" * (MAX_LINE + 16) + b"\n")
        stream.flush()
        response = json.loads(stream.readline())
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-request"
        assert stream.readline() == b""  # server hung up


def test_stats_and_health_snapshots(server, client):
    a = client.var("a")
    client.apply("and", a, client.var("b"))
    with pytest.raises(ServerError):
        client.call("frobnicate")
    health = client.health()
    assert health["status"] == "ok"
    assert health["backend"] == server.server.backend
    assert health["sessions"] == 1

    stats = client.stats()
    top = stats["server"]
    assert top["backend"] == server.server.backend
    assert top["sessions"]["open"] == 1
    assert top["verbs"]["var"] == 2
    assert top["errors"]["unknown-verb"] == 1
    assert top["aborts"] == 0 and top["degradations"] == 0
    assert top["scheduler"]["workers"] == 2
    assert top["scheduler"]["dispatched"] >= 3

    mine = stats["session"]
    assert mine["handles"] == 3
    assert mine["requests"] >= 4
    assert mine["manager"]["nodes"] >= 3


def _build_dnf(client, nvars, seed, terms=14, width=4, budget=None):
    """Build a seeded random DNF server-side; returns its handle.

    Kernel checkpoints fire every CHECK_STRIDE steps, so only sizable
    operands make budget tests meaningful — two of these conjoined
    comfortably exceed one stride.
    """
    rng = random.Random(seed)
    names = [f"x{i}" for i in range(nvars)]
    acc = None
    for _ in range(terms):
        term = None
        for name in rng.sample(names, width):
            literal = client.var(name, budget=budget)
            if rng.random() < 0.5:
                literal = client.apply("not", literal, budget=budget)
            term = (literal if term is None else
                    client.apply("and", term, literal, budget=budget))
        acc = (term if acc is None else
               client.apply("or", acc, term, budget=budget))
    return acc


def test_per_request_budget_overrides_server_default(server_factory,
                                                     client_factory):
    # Server default budget is tiny; a generous per-request budget
    # must override it (merge semantics, not min()).
    big = {"step": 10_000_000}
    handle = server_factory(backend="object", step_budget=1)
    client = client_factory(handle.port)
    f = _build_dnf(client, 12, seed=1, budget=big)
    g = _build_dnf(client, 12, seed=2, budget=big)
    with pytest.raises(ServerError) as excinfo:
        client.apply("and", f, g)  # default step budget: aborts
    assert excinfo.value.is_budget
    assert excinfo.value.kind == "BudgetExceeded"
    conj = client.apply("and", f, g, budget=big)
    assert client.apply("leq", conj, f, budget=big) is True


def test_bad_budget_spec_is_bad_request(client):
    a = client.var("a")
    with pytest.raises(ServerError) as excinfo:
        client.call("count", {"f": a, "budget": {"steps": 5}})
    assert excinfo.value.code == "bad-request"
