"""Fault injection through the server path.

The governor's clean-unwind contract, observed from the wire: injected
aborts and exhausted budgets surface as structured ``budget`` errors,
the session (and every handle) stays usable, and re-running the failed
request yields the exact result an unbudgeted inline manager computes.
"""

from __future__ import annotations

import random

import pytest

from repro.bdd import Manager
from repro.serve import ServerError

BACKENDS = ("object", "array")

NVARS = 12
NAMES = [f"x{i}" for i in range(NVARS)]


def _cubes(seed, terms=14, width=4):
    rng = random.Random(seed)
    return [[(name, rng.random() < 0.5)
             for name in rng.sample(NAMES, width)]
            for _ in range(terms)]


def _oracle_dnf(manager, cubes):
    acc = manager.false
    for cube in cubes:
        term = manager.true
        for name, positive in cube:
            v = manager.var(name)
            term &= v if positive else ~v
        acc |= term
    return acc


def _client_dnf(call, cubes):
    """Build the same DNF through a client ``call`` wrapper.

    Variables are declared upfront in ``NAMES`` order so the session's
    variable order matches the oracle's — node counts are only
    comparable under the same order.
    """
    for name in NAMES:
        call("var", {"name": name})
    acc = None
    for cube in cubes:
        term = None
        for name, positive in cube:
            lit = call("var", {"name": name})["handle"]
            if not positive:
                lit = call("apply", {"op": "not", "f": lit})["handle"]
            term = lit if term is None else call(
                "apply", {"op": "and", "f": term, "g": lit})["handle"]
        acc = term if acc is None else call(
            "apply", {"op": "or", "f": acc, "g": term})["handle"]
    return acc


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def oracle(backend):
    """Inline same-script manager, created BEFORE any env injection."""
    manager = Manager(backend=backend)
    for name in NAMES:
        manager.add_var(name)
    f = _oracle_dnf(manager, _cubes(101))
    g = _oracle_dnf(manager, _cubes(202))
    return manager, f, f & g


def test_injected_abort_is_structured_and_retryable(
        backend, oracle, monkeypatch, server_factory, client_factory):
    """REPRO_INJECT_ABORT through the daemon: one structured ``budget``
    error somewhere in the script, then exact agreement on retry."""
    _, _, expected = oracle
    # Sessions read the env when their manager is created (on accept),
    # so setting it after the oracle exists scopes the fault to the
    # server side only.
    monkeypatch.setenv("REPRO_INJECT_ABORT", "apply:1")
    server = server_factory(backend=backend)
    client = client_factory(server.port)

    injected = []

    def call(verb, params):
        while True:
            try:
                return client.call(verb, params)
            except ServerError as exc:
                # Structured, typed, and retryable — or it's a bug.
                assert exc.code == "budget"
                assert exc.kind == "InjectedAbort"
                injected.append((verb, dict(params)))

    f = _client_dnf(call, _cubes(101))
    g = _client_dnf(call, _cubes(202))
    conj = call("apply", {"op": "and", "f": f, "g": g})["handle"]

    # The injection is one-shot per manager and armed to fire at the
    # first apply checkpoint, which this script certainly reaches.
    assert len(injected) == 1

    # The session survived: sanitizer-clean graph, exact results.
    check = client.check()
    assert check["ok"] is True, check["diagnostics"]
    count = client.count(conj, nvars=NVARS)
    assert count["nodes"] == len(expected)
    assert count["sat_count"] == expected.sat_count(NVARS)
    names = sorted(expected.support())
    assert client.minterms(conj, names=names) == \
        [dict(m) for m in expected.iter_minterms(names)]

    # The abort is visible in the server-wide governor accounting.
    assert client.stats()["server"]["aborts"] >= 1


@pytest.mark.parametrize("budget,kind", [
    ({"step": 1}, "BudgetExceeded"),
    ({"node": 1}, "BudgetExceeded"),
    ({"deadline": 1e-9}, "DeadlineExceeded"),
])
def test_tiny_budget_then_exact_retry(backend, oracle, server_factory,
                                      client_factory, budget, kind):
    """A starved request fails structurally; the re-run is exact."""
    _, f_expected, expected = oracle
    server = server_factory(backend=backend)
    client = client_factory(server.port)

    f = _client_dnf(client.call, _cubes(101))
    g = _client_dnf(client.call, _cubes(202))
    assert client.count(f, nvars=NVARS)["nodes"] == len(f_expected)

    with pytest.raises(ServerError) as excinfo:
        client.call("apply", {"op": "and", "f": f, "g": g},
                    budget=budget)
    assert excinfo.value.code == "budget"
    assert excinfo.value.is_budget
    assert excinfo.value.kind == kind

    # Operands are untouched by the unwind and the same request,
    # re-sent without the starvation budget, is exact.
    assert client.check()["ok"] is True
    conj = client.call("apply",
                       {"op": "and", "f": f, "g": g})["handle"]
    count = client.count(conj, nvars=NVARS)
    assert count["nodes"] == len(expected)
    assert count["sat_count"] == expected.sat_count(NVARS)

    stats = client.stats()
    assert stats["server"]["aborts"] >= 1
    assert stats["server"]["errors"]["budget"] == 1


def test_injected_abort_env_does_not_outlive_session(
        backend, monkeypatch, server_factory, client_factory):
    """A session created after the env knob is cleared is fault-free."""
    monkeypatch.setenv("REPRO_INJECT_ABORT", "apply:1")
    server = server_factory(backend=backend)
    faulty = client_factory(server.port)
    monkeypatch.delenv("REPRO_INJECT_ABORT")
    clean = client_factory(server.port)

    def script(client):
        aborted = 0
        f = None
        cubes = _cubes(303, terms=14)
        while f is None:
            try:
                f = _client_dnf(client.call, cubes)
            except ServerError as exc:
                assert exc.kind == "InjectedAbort"
                aborted += 1
                # restart the whole script; handles are still valid
        return f, aborted

    _, aborts_faulty = script(faulty)
    _, aborts_clean = script(clean)
    assert aborts_faulty == 1  # one-shot injection fired
    assert aborts_clean == 0   # fresh manager, no injection armed
