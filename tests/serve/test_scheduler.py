"""Unit tests for the fair round-robin executor.

The two properties the server depends on: per-session serialization
(managers are not thread-safe) and round-robin fairness (a bursty
session cannot starve the others).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError

import pytest

from repro.serve.scheduler import FairExecutor


@pytest.fixture
def executor():
    pool = FairExecutor(workers=1)
    yield pool
    pool.shutdown()


def test_submit_returns_result(executor):
    assert executor.submit("s1", lambda: 41 + 1).result(5) == 42


def test_submit_with_args(executor):
    future = executor.submit("s1", lambda a, b: a * b, 6, 7)
    assert future.result(5) == 42


def test_exception_propagates_through_future(executor):
    def boom():
        raise ValueError("kaboom")

    future = executor.submit("s1", boom)
    with pytest.raises(ValueError, match="kaboom"):
        future.result(5)
    # The worker survives a failing call.
    assert executor.submit("s1", lambda: "ok").result(5) == "ok"


def test_round_robin_burst_cannot_starve_other_session():
    """With 1 worker: A queues a burst, then B queues one call.

    Round-robin means B's call runs on the very next turn, not after
    A's whole burst.
    """
    pool = FairExecutor(workers=1)
    try:
        order = []
        gate = threading.Event()

        def work(tag):
            gate.wait(5)
            order.append(tag)

        # First call blocks the worker so the rest queue up behind it.
        first = pool.submit("A", work, "A0")
        for i in range(1, 10):
            pool.submit("A", work, f"A{i}")
        last_b = pool.submit("B", work, "B0")
        gate.set()
        last_b.result(10)
        first.result(10)
        # B0 ran second or third: immediately after whichever A call
        # held the worker when B enqueued (never behind the full burst).
        assert "B0" in order[:3], order
        assert order.index("B0") < order.index("A5"), order
    finally:
        pool.shutdown()


def test_per_session_calls_run_in_submission_order():
    pool = FairExecutor(workers=4)
    try:
        order = []
        lock = threading.Lock()

        def work(i):
            with lock:
                order.append(i)

        futures = [pool.submit("s", work, i) for i in range(50)]
        for future in futures:
            future.result(10)
        assert order == list(range(50))
    finally:
        pool.shutdown()


def test_per_session_serialization_under_many_workers():
    """At most one call of a session runs at any moment."""
    pool = FairExecutor(workers=4)
    try:
        active = 0
        peak = 0
        lock = threading.Lock()

        def work():
            nonlocal active, peak
            with lock:
                active += 1
                peak = max(peak, active)
            time.sleep(0.002)
            with lock:
                active -= 1

        futures = [pool.submit("only", work) for _ in range(25)]
        for future in futures:
            future.result(10)
        assert peak == 1
    finally:
        pool.shutdown()


def test_distinct_sessions_do_run_concurrently():
    pool = FairExecutor(workers=2)
    try:
        both = threading.Barrier(2, timeout=5)

        def work():
            both.wait()  # only passes if the two calls overlap
            return True

        fa = pool.submit("a", work)
        fb = pool.submit("b", work)
        assert fa.result(10) and fb.result(10)
    finally:
        pool.shutdown()


def test_remove_session_cancels_queued_calls():
    pool = FairExecutor(workers=1)
    try:
        gate = threading.Event()
        running = threading.Event()

        def block():
            running.set()
            gate.wait(5)

        in_flight = pool.submit("victim", block)
        assert running.wait(5)
        queued = [pool.submit("victim", lambda: None) for _ in range(3)]
        assert pool.pending("victim") == 3
        assert pool.remove_session("victim") == 3
        assert pool.pending("victim") == 0
        gate.set()
        # The in-flight call completes normally...
        in_flight.result(10)
        # ...but the queued ones were cancelled.
        for future in queued:
            with pytest.raises(CancelledError):
                future.result(1)
    finally:
        pool.shutdown()


def test_remove_unknown_session_is_noop(executor):
    assert executor.remove_session("ghost") == 0


def test_dispatched_counts_completed_calls(executor):
    for _ in range(5):
        executor.submit("s", lambda: None).result(5)
    assert executor.dispatched == 5


def test_shutdown_rejects_new_work():
    pool = FairExecutor(workers=1)
    pool.shutdown()
    with pytest.raises(RuntimeError):
        pool.submit("s", lambda: None)


def test_shutdown_is_idempotent():
    pool = FairExecutor(workers=2)
    pool.shutdown()
    pool.shutdown()


def test_workers_must_be_positive():
    with pytest.raises(ValueError):
        FairExecutor(workers=0)
