"""Client retry policy against scripted (hung/flapping) servers.

A :class:`ScriptedServer` is a bare TCP endpoint speaking just enough
of the wire protocol to exercise the client's retry machinery without
a real daemon: each accepted connection runs one script (greet, answer,
reject, or hang).  This pins down the policy's edges — what is retried
(``budget``, ``overload``), what is not (deterministic errors,
timeouts), and on which connection.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.serve import Client, ClientTimeout, ServerError


class ScriptedServer:
    """Runs one script per accepted connection, in order."""

    def __init__(self, *scripts):
        self.scripts = list(scripts)
        self.requests: list[dict] = []
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        for script in self.scripts:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            with conn:
                try:
                    script(self, conn.makefile("rwb"))
                except (OSError, ValueError):
                    pass

    def close(self):
        self.sock.close()


def send(file, message):
    file.write(json.dumps(message).encode("utf-8") + b"\n")
    file.flush()


def greet(file, *, ok=True, code="overload"):
    if ok:
        send(file, {"ok": True, "serve": "repro", "protocol": 1,
                    "session": "scripted"})
    else:
        send(file, {"ok": False,
                    "error": {"code": code, "message": "scripted"}})


def rejecting(code):
    """Connection script: refuse with an error greeting and close."""
    def script(server, file):
        greet(file, ok=False, code=code)
    return script


def answering(*outcomes):
    """Connection script: greet, then answer requests per outcome.

    Outcomes: ``"ok"`` (result ``{"value": 42}``), an error code
    string (structured error echoing the request id), or ``"hang"``
    (never answer; blocks until the client hangs up).
    """
    def script(server, file):
        greet(file)
        for outcome in outcomes:
            line = file.readline()
            if not line:
                return
            request = json.loads(line)
            server.requests.append(request)
            if outcome == "hang":
                file.readline()  # the client sends nothing more
                return
            if outcome == "ok":
                send(file, {"id": request["id"], "ok": True,
                            "result": {"value": 42}})
            else:
                send(file, {"id": request["id"], "ok": False,
                            "error": {"code": outcome,
                                      "message": "scripted"}})
    return script


@pytest.fixture
def scripted():
    servers = []

    def boot(*scripts) -> ScriptedServer:
        server = ScriptedServer(*scripts)
        servers.append(server)
        return server

    yield boot
    for server in servers:
        server.close()


FAST = {"retry_base": 0.001, "retry_max": 0.01}


def test_overload_greeting_reconnects(scripted):
    server = scripted(rejecting("overload"), answering("ok"))
    with Client(port=server.port, retries=2, **FAST) as client:
        assert client.session == "scripted"
        assert client.call("ping")["value"] == 42


def test_overload_greeting_without_retries_raises(scripted):
    server = scripted(rejecting("overload"))
    with pytest.raises(ServerError) as excinfo:
        Client(port=server.port)
    assert excinfo.value.code == "overload"
    assert excinfo.value.retryable


def test_nonretryable_greeting_never_reconnects(scripted):
    server = scripted(rejecting("bad-request"), answering("ok"))
    with pytest.raises(ServerError) as excinfo:
        Client(port=server.port, retries=5, **FAST)
    assert excinfo.value.code == "bad-request"


def test_budget_error_resent_on_same_session(scripted):
    server = scripted(answering("budget", "ok"))
    with Client(port=server.port, retries=2, **FAST) as client:
        assert client.call("count", {"f": "h1"})["value"] == 42
    # Both sends rode one connection, with distinct request ids.
    assert [r["id"] for r in server.requests] == [1, 2]
    assert all(r["verb"] == "count" for r in server.requests)


def test_flapping_server_eventually_answers(scripted):
    server = scripted(answering("budget", "overload", "budget", "ok"))
    with Client(port=server.port, retries=3, **FAST) as client:
        assert client.call("ping")["value"] == 42
    assert len(server.requests) == 4


def test_retries_exhausted_raises(scripted):
    server = scripted(answering("budget", "budget", "budget"))
    with Client(port=server.port, retries=2, **FAST) as client:
        with pytest.raises(ServerError) as excinfo:
            client.call("ping")
    assert excinfo.value.code == "budget"
    assert len(server.requests) == 3  # initial send + 2 retries


def test_retries_default_off(scripted):
    server = scripted(answering("budget", "ok"))
    with Client(port=server.port) as client:
        with pytest.raises(ServerError):
            client.call("ping")
    assert len(server.requests) == 1


def test_deterministic_errors_not_retried(scripted):
    server = scripted(answering("unknown-handle", "ok"))
    with Client(port=server.port, retries=5, **FAST) as client:
        with pytest.raises(ServerError) as excinfo:
            client.call("ping")
    assert excinfo.value.code == "unknown-handle"
    assert not excinfo.value.retryable
    assert len(server.requests) == 1


def test_hung_server_times_out_without_retry(scripted):
    """Timeouts are never retried: the stream may hold a stale
    response, so a re-send could misattribute answers."""
    server = scripted(answering("hang"))
    with Client(port=server.port, timeout=0.2, retries=5,
                **FAST) as client:
        with pytest.raises(ClientTimeout):
            client.call("ping")
    assert len(server.requests) == 1


def test_negative_retries_rejected():
    with pytest.raises(ValueError, match="retries"):
        Client(port=1, retries=-1)


def test_backoff_is_capped():
    client = Client.__new__(Client)
    client.retry_base = 0.05
    client.retry_max = 2.0
    delays = [client._backoff(n) for n in range(12)]
    assert delays[0] == 0.05
    assert delays[1] == 0.1
    assert max(delays) == 2.0
    assert delays == sorted(delays)
