"""Daemon persistence: save/load verbs, restarts, snapshots.

The warm-restart story of ``docs/persistence.md``: a daemon booted
with ``--store DIR`` can persist session handles by name and a
*restarted* daemon (new process, new managers) serves them back from
the store without re-running the computation that produced them.
"""

from __future__ import annotations

import pytest

from repro.bdd import Manager
from repro.serve import ServerError
from repro.store import BDDStore


def xor_chain(client, n=4):
    f = client.var("x0")
    for i in range(1, n):
        f = client.apply("xor", f, client.var(f"x{i}"))
    return f


def test_save_load_roundtrip(tmp_path, server_factory, client_factory):
    server = server_factory(store=str(tmp_path / "store"))
    client = client_factory(server.port)
    f = xor_chain(client)
    saved = client.call("save", {"name": "parity4", "f": f,
                                 "tags": ["unit"]})
    assert saved["name"] == "parity4"
    assert len(saved["hash"]) == 64
    assert saved["nodes"] == 7

    loaded = client.call("load", {"name": "parity4"})
    # Canonicity: the loaded function interns to the same handle.
    assert loaded["handle"] == f
    assert loaded["nodes"] == 7


def test_restarted_daemon_serves_stored_handles(tmp_path,
                                                server_factory,
                                                client_factory):
    store_dir = str(tmp_path / "store")
    first = server_factory(store=store_dir)
    client = client_factory(first.port)
    f = xor_chain(client)
    digest = client.call("save", {"name": "parity4", "f": f})["hash"]
    first.stop()

    second = server_factory(store=store_dir)
    client2 = client_factory(second.port)
    loaded = client2.call("load", {"name": "parity4"})
    assert loaded["nodes"] == 7
    assert client2.count(loaded["handle"], nvars=4)["sat_count"] == 8
    # And the out-of-band view agrees with what the daemon serves.
    manager = Manager()
    manager.add_vars(*(f"x{i}" for i in range(4)))
    offline = BDDStore(store_dir).load(manager, "parity4")
    assert offline.sat_count() == 8
    assert BDDStore(store_dir).entries()[0]["hash"] == digest


def test_health_reports_store(tmp_path, server_factory,
                              client_factory):
    store_dir = tmp_path / "store"
    BDDStore(store_dir).save("seed", Manager().true)
    server = server_factory(store=str(store_dir))
    health = client_factory(server.port).health()
    assert health["store"] == str(store_dir)
    assert health["store_entries_at_boot"] == 1


def test_no_store_attached_is_bad_request(server_factory,
                                          client_factory):
    server = server_factory()
    client = client_factory(server.port)
    with pytest.raises(ServerError) as excinfo:
        client.call("save", {"name": "x", "f": client.var("a")})
    assert excinfo.value.code == "bad-request"
    assert "no store attached" in str(excinfo.value)


def test_store_errors_carry_structured_code(tmp_path, server_factory,
                                            client_factory):
    server = server_factory(store=str(tmp_path / "store"))
    client = client_factory(server.port)
    with pytest.raises(ServerError) as excinfo:
        client.call("load", {"name": "ghost"})
    assert excinfo.value.code == "store"
    assert "unknown function" in str(excinfo.value)


def test_bad_save_params_rejected(tmp_path, server_factory,
                                  client_factory):
    server = server_factory(store=str(tmp_path / "store"))
    client = client_factory(server.port)
    a = client.var("a")
    for params in ({"name": "", "f": a},
                   {"name": "x", "f": a, "tags": "not-a-list"},
                   {"name": 7, "f": a}):
        with pytest.raises(ServerError) as excinfo:
            client.call("save", params)
        assert excinfo.value.code == "bad-request"


def test_snapshot_on_shutdown_and_restore(tmp_path, server_factory,
                                          client_factory):
    store_dir = str(tmp_path / "store")
    server = server_factory(store=store_dir, snapshot=True)
    client = client_factory(server.port)
    session = client.session
    f = xor_chain(client, 3)
    server.stop()

    entries = BDDStore(store_dir).entries(
        prefix=f"snapshot/{session}/")
    # Every handle the session held (3 vars + 2 xor intermediates,
    # deduplicated by canonicity) made it to disk, and each restores
    # to a live function.
    names = {e["name"].rsplit("/", 1)[1] for e in entries}
    assert f in names
    assert len(entries) >= 4
    manager = Manager()
    store = BDDStore(store_dir)
    for entry in entries:
        g = store.load(manager, entry["name"])
        assert entry["nodes"] == len(g)
        assert "snapshot" in entry["tags"]


def test_snapshot_without_store_refused():
    from repro.serve import Server

    with pytest.raises(ValueError, match="snapshot requires"):
        Server(snapshot=True)
