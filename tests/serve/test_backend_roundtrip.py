"""Backend selection round-trip through a real ``repro serve``
subprocess.

Regression for the PR 6 precedence bug: ``--backend`` must beat
``REPRO_BACKEND``, and the resolved choice must round-trip all the way
into the per-session node stores — not just into the banner.  The
session's manager stats report the *actual* store backend, so the
assertions reach the bottom layer.
"""

from __future__ import annotations

import pytest

from repro.serve import Client

from .conftest import serve_subprocess


def _observed_backends(port):
    """(greeting, server-stats, live-session-store) backend tags."""
    with Client(port=port) as client:
        client.var("a")  # force real store activity
        stats = client.stats()
        return (client.greeting["backend"],
                stats["server"]["backend"],
                stats["session"]["manager"]["backend"])


@pytest.mark.parametrize("flag,env,expected", [
    # the bug: flag must win over a conflicting environment
    (["--backend", "array"], {"REPRO_BACKEND": "object"}, "array"),
    (["--backend", "object"], {"REPRO_BACKEND": "array"}, "object"),
    # environment alone steers the default
    ([], {"REPRO_BACKEND": "array"}, "array"),
    ([], {"REPRO_BACKEND": ""}, "object"),
])
def test_backend_precedence_roundtrip(flag, env, expected):
    with serve_subprocess(*flag, env=env) as (_process, port):
        assert _observed_backends(port) == (expected,) * 3


def test_banner_reports_resolved_backend():
    with serve_subprocess("--backend", "array",
                          env={"REPRO_BACKEND": "object"}) as (proc,
                                                               port):
        # The boot line already printed; verify over the wire too and
        # make sure every new session agrees with the first.
        first = _observed_backends(port)
        second = _observed_backends(port)
        assert first == second == ("array",) * 3


def test_unknown_backend_env_fails_fast():
    """A bogus REPRO_BACKEND must refuse to boot, not fall back."""
    import subprocess
    import sys

    from .conftest import SRC_DIR
    import os

    env = dict(os.environ, PYTHONPATH=SRC_DIR,
               REPRO_BACKEND="quantum")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        capture_output=True, text=True, timeout=60, env=env)
    assert proc.returncode != 0
    assert "quantum" in proc.stderr
