"""Fixtures for the service-daemon suites.

``server_factory`` boots an in-process daemon (:class:`ServerThread`)
and guarantees teardown; ``serve_subprocess`` runs the real
``python -m repro serve`` CLI for tests that need process isolation
(environment round-trips, CLI behavior).
"""

from __future__ import annotations

import os
import subprocess
import sys
from contextlib import contextmanager

import pytest

from repro.serve import Client, ServerThread

#: src/ directory the subprocess needs on PYTHONPATH.
SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")


@pytest.fixture
def server_factory():
    """Factory for in-thread servers; every server stops at teardown."""
    handles = []

    def boot(**kwargs) -> ServerThread:
        handle = ServerThread(**kwargs).start()
        handles.append(handle)
        return handle

    yield boot
    for handle in handles:
        handle.stop()


@contextmanager
def serve_subprocess(*args: str, env: dict | None = None):
    """Run ``python -m repro serve`` and yield (process, port).

    The daemon prints its listen line on stdout once bound; the port
    is parsed from it.  The process is terminated on exit.
    """
    full_env = dict(os.environ)
    full_env["PYTHONPATH"] = SRC_DIR + os.pathsep \
        + full_env.get("PYTHONPATH", "")
    if env:
        full_env.update(env)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=full_env)
    try:
        line = process.stdout.readline()
        assert "listening on" in line, (
            f"daemon failed to boot: {line!r} / "
            f"{process.stderr.read() if process.poll() is not None else ''}")
        port = int(line.split("listening on ")[1]
                   .split(" ")[0].rsplit(":", 1)[1])
        yield process, port
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)


@pytest.fixture
def client_factory():
    """Factory for clients; every client closes at teardown."""
    clients = []

    def connect(port: int, **kwargs) -> Client:
        client = Client(port=port, **kwargs)
        clients.append(client)
        return client

    yield connect
    for client in clients:
        client.close()
