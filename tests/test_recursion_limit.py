"""Guard against the ``sys.setrecursionlimit`` hack returning.

The kernels are iterative (explicit stacks), so importing ``repro`` must
never need to raise the interpreter recursion limit.  The check runs in
a fresh subprocess because the limit is process-global state.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import repro

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def test_import_does_not_touch_recursion_limit():
    code = (
        "import sys\n"
        "before = sys.getrecursionlimit()\n"
        "import repro\n"
        "import repro.bdd, repro.core, repro.fsm, repro.reach\n"
        "import repro.verify, repro.harness\n"
        "after = sys.getrecursionlimit()\n"
        "assert after == before, f'recursion limit changed: "
        "{before} -> {after}'\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr


def test_no_setrecursionlimit_in_source_tree():
    """No module under src/repro may call sys.setrecursionlimit."""
    offenders = [
        path
        for path in Path(SRC_DIR, "repro").rglob("*.py")
        if "setrecursionlimit(" in path.read_text(encoding="utf-8")
    ]
    assert offenders == []
