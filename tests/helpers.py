"""Shared test utilities: random functions, brute-force oracles."""

from __future__ import annotations

import random
from collections.abc import Callable

from repro.bdd import Function, Manager


def fresh_manager(nvars: int, prefix: str = "x") -> tuple[Manager,
                                                          list[Function]]:
    """A manager with ``nvars`` variables ``x0..``."""
    manager = Manager()
    variables = manager.add_vars(*[f"{prefix}{i}" for i in range(nvars)])
    return manager, variables


def random_function(manager: Manager, variables: list[Function],
                    rng: random.Random, terms: int = 8,
                    width: int = 3) -> Function:
    """A random DNF over the given variables."""
    acc = manager.false
    width = min(width, len(variables))
    for _ in range(terms):
        cube = manager.true
        for variable in rng.sample(variables, width):
            cube = cube & (variable if rng.random() < 0.5 else ~variable)
        acc = acc | cube
    return acc


def truth_table(function: Function, names: list[str]) -> list[bool]:
    """Exhaustive evaluation over the named variables (small n only)."""
    n = len(names)
    return [function(**{names[i]: bool(k >> i & 1) for i in range(n)})
            for k in range(1 << n)]


def assert_equal_semantics(f: Function, oracle: Callable[..., bool],
                           names: list[str]) -> None:
    """Check a BDD against a Python oracle on the full truth table."""
    n = len(names)
    for k in range(1 << n):
        assignment = {names[i]: bool(k >> i & 1) for i in range(n)}
        assert f(**assignment) == oracle(**assignment), assignment
