"""Transition relations: clustering, images, early quantification."""

from __future__ import annotations

import itertools

import pytest

from repro.fsm import encode
from repro.fsm.benchmarks import counter, token_ring
from repro.reach import PartialImagePolicy, TransitionRelation
from repro.core.approx import remap_under_approx


def explicit_image(circuit, states: set[tuple]) -> set[tuple]:
    """Brute-force one-step image over latch-name-sorted state tuples."""
    latch_names = sorted(latch.name for latch in circuit.latches)
    out = set()
    for state_tuple in states:
        state = dict(zip(latch_names, state_tuple))
        for bits in itertools.product([False, True],
                                      repeat=len(circuit.inputs)):
            inputs = dict(zip(circuit.inputs, bits))
            _, nxt = circuit.simulate(inputs, state)
            out.add(tuple(nxt[name] for name in latch_names))
    return out


def to_set(function, encoded) -> set[tuple]:
    latch_names = sorted(encoded.state_vars)
    out = set()
    for assignment in function.iter_minterms(latch_names):
        out.add(tuple(assignment[name] for name in latch_names))
    return out


class TestImage:
    @pytest.mark.parametrize("make", [lambda: counter(3),
                                      lambda: token_ring(3)])
    def test_image_matches_explicit(self, make):
        circuit = make()
        encoded = encode(circuit)
        tr = TransitionRelation(encoded)
        init = encoded.initial_states()
        symbolic = tr.image(init)
        latch_names = sorted(encoded.state_vars)
        init_tuple = tuple(circuit.initial_state()[name]
                           for name in latch_names)
        expected = explicit_image(circuit, {init_tuple})
        assert to_set(symbolic, encoded) == expected

    def test_image_two_steps(self):
        circuit = token_ring(3)
        encoded = encode(circuit)
        tr = TransitionRelation(encoded)
        one = tr.image(encoded.initial_states())
        two = tr.image(one)
        latch_names = sorted(encoded.state_vars)
        init_tuple = tuple(circuit.initial_state()[name]
                           for name in latch_names)
        explicit_two = explicit_image(circuit,
                                      explicit_image(circuit,
                                                     {init_tuple}))
        assert to_set(two, encoded) == explicit_two

    def test_image_supports_state_vars_only(self):
        encoded = encode(counter(4))
        tr = TransitionRelation(encoded)
        image = tr.image(encoded.initial_states())
        assert image.support() <= set(encoded.state_vars)

    def test_cluster_limit_changes_count_not_result(self):
        circuit = token_ring(3)
        enc1 = encode(circuit)
        tr_fine = TransitionRelation(enc1, cluster_limit=1)
        enc2 = encode(circuit)
        tr_coarse = TransitionRelation(enc2, cluster_limit=10 ** 9)
        assert len(tr_fine.clusters) >= len(tr_coarse.clusters)
        img_fine = tr_fine.image(enc1.initial_states())
        img_coarse = tr_coarse.image(enc2.initial_states())
        assert to_set(img_fine, enc1) == to_set(img_coarse, enc2)

    def test_monolithic_agrees_with_clusters(self):
        circuit = counter(3)
        encoded = encode(circuit)
        tr = TransitionRelation(encoded)
        mono = tr.monolithic()
        init = encoded.initial_states()
        direct = (mono & init).exists(
            set(encoded.state_vars) | set(encoded.input_vars))
        direct = direct.rename(dict(zip(encoded.next_vars,
                                        encoded.state_vars)))
        assert direct == tr.image(init)


class TestPreimage:
    def test_preimage_inverts_image_on_reachable(self):
        circuit = token_ring(3)
        encoded = encode(circuit)
        tr = TransitionRelation(encoded)
        init = encoded.initial_states()
        image = tr.image(init)
        pre = tr.preimage(image)
        # Every state whose successors are in image... at least init.
        assert init <= pre

    def test_preimage_explicit(self):
        circuit = counter(2)
        encoded = encode(circuit)
        tr = TransitionRelation(encoded)
        # Preimage of {q=1} is {q=0 (en), q=1 (no en)}.
        target = encoded.manager.cube({"q0": True, "q1": False})
        pre = tr.preimage(target)
        expected = {(False, False), (True, False)}
        assert to_set(pre, encoded) == expected


class TestPartialImage:
    def test_partial_image_is_subset(self):
        circuit = token_ring(4)
        encoded = encode(circuit)
        tr = TransitionRelation(encoded)
        init = encoded.initial_states()
        frontier = tr.image(init)
        policy = PartialImagePolicy(
            subset=lambda f, *, threshold=0: remap_under_approx(f, threshold),
            trigger=1, threshold=0)
        partial = tr.image(frontier, partial=policy)
        exact = tr.image(frontier)
        assert partial <= exact

    def test_stats_accumulate(self):
        encoded = encode(counter(3))
        tr = TransitionRelation(encoded)
        assert tr.stats.images == 0
        tr.image(encoded.initial_states())
        assert tr.stats.images == 1
        assert tr.stats.peak_product_nodes > 0
