"""Early-quantification schedule internals."""

from __future__ import annotations

from repro.fsm import encode
from repro.fsm.benchmarks import comm_controller, counter
from repro.reach import TransitionRelation
from repro.reach.transition import _cluster, _quantification_schedule


class TestQuantificationSchedule:
    def test_every_quantifiable_var_scheduled_once(self):
        encoded = encode(comm_controller(4, 2))
        tr = TransitionRelation(encoded, cluster_limit=50)
        quantifiable = set(encoded.state_vars) | set(encoded.input_vars)
        scheduled: list[str] = []
        for group in tr.quantify_forward:
            scheduled.extend(group)
        assert len(scheduled) == len(set(scheduled))
        mentioned = set()
        for cluster in tr.clusters:
            mentioned |= cluster.support()
        assert set(scheduled) == quantifiable & mentioned

    def test_no_variable_quantified_before_last_use(self):
        encoded = encode(comm_controller(4, 2))
        tr = TransitionRelation(encoded, cluster_limit=50)
        for index, group in enumerate(tr.quantify_forward):
            for later in tr.clusters[index + 1:]:
                assert not (group & later.support()), \
                    "variable quantified while still in use"

    def test_schedule_helper_directly(self):
        supports = [{"a", "b"}, {"b", "c"}, {"c"}]
        schedule = _quantification_schedule(supports, {"a", "b", "c"})
        assert schedule == [{"a"}, {"b"}, {"c"}]

    def test_schedule_with_unquantifiable(self):
        supports = [{"a", "y"}, {"y", "b"}]
        schedule = _quantification_schedule(supports, {"a", "b"})
        assert schedule == [{"a"}, {"b"}]


class TestClustering:
    def test_cluster_respects_limit_locally(self):
        encoded = encode(counter(6))
        partitions = [encoded.manager.var(y).equiv(delta)
                      for y, delta in zip(encoded.next_vars,
                                          encoded.next_functions)]
        clusters = _cluster(partitions, limit=8)
        assert len(clusters) >= 2
        # Conjunction of all clusters equals conjunction of partitions.
        total_a = encoded.manager.true
        for c in clusters:
            total_a = total_a & c
        total_b = encoded.manager.true
        for p in partitions:
            total_b = total_b & p
        assert total_a == total_b

    def test_huge_limit_single_cluster(self):
        encoded = encode(counter(4))
        tr = TransitionRelation(encoded, cluster_limit=10 ** 9)
        assert len(tr.clusters) == 1

    def test_empty_partition_list(self):
        assert _cluster([], limit=10) == []
