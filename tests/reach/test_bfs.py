"""Breadth-first reachability."""

from __future__ import annotations

import itertools
from collections import deque

import pytest

from repro.fsm import encode
from repro.fsm.benchmarks import counter, shift_queue, token_ring
from repro.reach import (TraversalLimit, bfs_reachability, count_states)


def explicit_reachable(circuit) -> set[tuple]:
    latch_names = sorted(latch.name for latch in circuit.latches)
    init = tuple(circuit.initial_state()[name] for name in latch_names)
    seen = {init}
    queue = deque([dict(circuit.initial_state())])
    while queue:
        state = queue.popleft()
        for bits in itertools.product([False, True],
                                      repeat=len(circuit.inputs)):
            inputs = dict(zip(circuit.inputs, bits))
            _, nxt = circuit.simulate(inputs, state)
            key = tuple(nxt[name] for name in latch_names)
            if key not in seen:
                seen.add(key)
                queue.append(nxt)
    return seen


class TestBfs:
    @pytest.mark.parametrize("make,expected", [
        (lambda: counter(4), 16),
        (lambda: counter(6), 64),
    ])
    def test_counter_reaches_everything(self, make, expected):
        encoded = encode(make())
        from repro.reach import TransitionRelation

        tr = TransitionRelation(encoded)
        result = bfs_reachability(tr, encoded.initial_states())
        assert result.complete
        assert count_states(result.reached,
                            encoded.state_vars) == expected

    @pytest.mark.parametrize("make", [lambda: token_ring(3),
                                      lambda: shift_queue(3, 2)])
    def test_matches_explicit_search(self, make):
        circuit = make()
        encoded = encode(circuit)
        from repro.reach import TransitionRelation

        tr = TransitionRelation(encoded)
        result = bfs_reachability(tr, encoded.initial_states())
        assert count_states(result.reached, encoded.state_vars) \
            == len(explicit_reachable(circuit))

    def test_iteration_counts_diameter(self):
        encoded = encode(counter(4))
        from repro.reach import TransitionRelation

        tr = TransitionRelation(encoded)
        result = bfs_reachability(tr, encoded.initial_states())
        assert result.iterations == 16  # 15 new states + 1 empty check

    def test_max_iterations_truncates(self):
        encoded = encode(counter(5))
        from repro.reach import TransitionRelation

        tr = TransitionRelation(encoded)
        result = bfs_reachability(tr, encoded.initial_states(),
                                  max_iterations=3)
        assert not result.complete
        assert count_states(result.reached, encoded.state_vars) == 4

    def test_node_limit_raises(self):
        encoded = encode(shift_queue(4, 3))
        from repro.reach import TransitionRelation

        tr = TransitionRelation(encoded)
        with pytest.raises(TraversalLimit):
            bfs_reachability(tr, encoded.initial_states(), node_limit=2)

    def test_deadline_raises(self):
        encoded = encode(shift_queue(4, 3))
        from repro.reach import TransitionRelation

        tr = TransitionRelation(encoded)
        with pytest.raises(TraversalLimit):
            bfs_reachability(tr, encoded.initial_states(),
                             deadline=0.0)

    def test_traces_recorded(self):
        encoded = encode(counter(3))
        from repro.reach import TransitionRelation

        tr = TransitionRelation(encoded)
        result = bfs_reachability(tr, encoded.initial_states())
        assert len(result.size_trace) == result.iterations + 1
        assert result.seconds > 0
