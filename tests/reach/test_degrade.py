"""Degradation ladder: traversals survive tiny budgets exactly.

The paper's pitch is that a dense subset of the frontier is an
acceptable answer to blowup; `repro.reach.degrade` turns governor
aborts into exactly that.  These tests verify the ladder rung by rung
and — the headline property — that both traversals still return the
*exact* reachable set when every image computation runs under a budget
far too small for the exact images.
"""

from __future__ import annotations

import pytest

from repro.bdd import Budget, BudgetExceeded, InjectedAbort
from repro.bdd.governor import CHECK_STRIDE
from repro.core.approx import remap_under_approx
from repro.fsm import encode
from repro.fsm.benchmarks import token_ring
from repro.reach import (TransitionRelation, bfs_reachability, count_states,
                         high_density_reachability)
from repro.reach.degrade import (MAX_SUBSET_RUNGS, ON_BLOWUP_MODES,
                                 governed_image, shield, validate_on_blowup)

#: token_ring(3) has 192 reachable states (verified by the exact BFS
#: tests) — every traversal below must land on this number no matter
#: how hard the budget squeezes it.
TOKEN_RING_STATES = 192


def rua(f, *, threshold=0):
    return remap_under_approx(f, threshold)


def make_problem():
    enc = encode(token_ring(3))
    return enc, TransitionRelation(enc), enc.manager


class TestPolicyValidation:
    def test_modes(self):
        assert set(ON_BLOWUP_MODES) == {"raise", "subset", "retry-reorder"}
        for mode in ON_BLOWUP_MODES:
            assert validate_on_blowup(mode) == mode
        with pytest.raises(ValueError):
            validate_on_blowup("panic")
        enc, tr, _ = make_problem()
        with pytest.raises(ValueError):
            bfs_reachability(tr, enc.initial_states(), on_blowup="panic")

    def test_shield_suspends_unless_raise(self):
        # Suspension is modeled as arming an empty budget, so
        # ``governor.armed`` is the observable.
        enc, _, manager = make_problem()
        states = enc.initial_states()
        governor = manager.governor
        with manager.with_budget(step_budget=10**9):
            with shield(states, "raise"):
                assert governor.armed
            with shield(states, "subset"):
                assert not governor.armed
            assert governor.armed


class TestRaisePropagates:
    def test_governed_image_raise_mode(self):
        enc, tr, manager = make_problem()
        manager.governor.inject_abort_after(CHECK_STRIDE, op="andex")
        with pytest.raises(InjectedAbort):
            governed_image(tr, enc.initial_states(), on_blowup="raise")

    def test_traversal_default_raises(self):
        enc, tr, manager = make_problem()
        manager.governor.arm(Budget(step_budget=2_000))
        with pytest.raises(BudgetExceeded):
            bfs_reachability(tr, enc.initial_states())


class _FailingImage:
    """A tr.image stand-in that emulates a budget-bound image.

    With ``fail_first=N`` the first N calls abort and later calls
    succeed.  With ``fail_first=None`` every call made while the
    governor is armed aborts — exactly the behaviour of an image whose
    budget is already exhausted, where only the ladder's
    suspended-exact bottom rung can complete.
    """

    def __init__(self, tr, fail_first=None):
        self._tr = tr
        self.fail_first = fail_first
        self.calls = 0

    def image(self, states, partial=None):
        self.calls += 1
        if self.fail_first is None:
            if states.manager.governor.armed:
                raise BudgetExceeded("stub: budget exhausted")
        elif self.calls <= self.fail_first:
            raise BudgetExceeded("stub: forced abort")
        return self._tr.image(states, partial=partial)


class TestLadder:
    def test_subset_rung_returns_inexact_image(self):
        enc, tr, manager = make_problem()
        frontier = bfs_reachability(tr, enc.initial_states()).reached
        fake = _FailingImage(tr, fail_first=2)  # initial try + gc retry
        image, exact = governed_image(
            fake, frontier, on_blowup="subset", subset=rua)
        assert not exact  # a subset rung produced it
        assert image <= tr.image(frontier)  # under-approximation
        degradations = manager.stats.degradations
        assert degradations["gc"] == 1 and degradations["subset"] == 1
        assert "exact" not in degradations

    def test_exact_rung_is_last_resort(self):
        enc, tr, manager = make_problem()
        manager.governor.arm(Budget(step_budget=10**9))
        frontier = bfs_reachability(tr, enc.initial_states()).reached
        fake = _FailingImage(tr)  # aborts whenever armed
        image, exact = governed_image(
            fake, frontier, on_blowup="subset", subset=rua)
        assert exact
        with manager.governor.suspended():
            assert image == tr.image(frontier)
        degradations = manager.stats.degradations
        assert degradations["exact"] == 1
        assert 1 <= degradations["subset"] <= MAX_SUBSET_RUNGS

    def test_allow_subset_false_skips_subset_rung(self):
        # Recovery sweeps must never under-approximate: a fixpoint
        # concluded from a subsetted image would be wrong.
        enc, tr, manager = make_problem()
        manager.governor.arm(Budget(step_budget=10**9))
        frontier = bfs_reachability(tr, enc.initial_states()).reached
        fake = _FailingImage(tr)
        image, exact = governed_image(
            fake, frontier, on_blowup="subset", subset=rua,
            allow_subset=False)
        assert exact
        with manager.governor.suspended():
            assert image == tr.image(frontier)
        assert "subset" not in manager.stats.degradations

    def test_reorder_rung_only_in_retry_reorder(self):
        enc, tr, manager = make_problem()
        manager.governor.arm(Budget(step_budget=10**9))
        frontier = bfs_reachability(tr, enc.initial_states()).reached
        fake = _FailingImage(tr)
        governed_image(fake, frontier, on_blowup="retry-reorder",
                       subset=rua)
        assert manager.stats.degradations["reorder"] == 1


class TestTraversalsStayExact:
    """The acceptance bar: tiny budgets, exact reachable sets."""

    def test_bfs_node_budget_degrades_and_completes(self):
        enc, tr, manager = make_problem()
        manager.governor.arm(Budget(node_budget=len(manager) + 50))
        result = bfs_reachability(tr, enc.initial_states(),
                                  on_blowup="subset")
        assert count_states(result.reached,
                            enc.state_vars) == TOKEN_RING_STATES
        assert manager.stats.total_degradations > 0
        assert manager.stats.total_aborts > 0

    def test_bfs_step_budget_climbs_full_ladder(self):
        enc, tr, manager = make_problem()
        manager.governor.arm(Budget(step_budget=2_000))
        result = bfs_reachability(tr, enc.initial_states(),
                                  on_blowup="subset")
        assert count_states(result.reached,
                            enc.state_vars) == TOKEN_RING_STATES
        degradations = manager.stats.degradations
        # GC cannot replenish a spent step window, so the ladder climbs
        # through the subset rungs down to the suspended-exact floor.
        assert degradations["subset"] > 0
        assert degradations["exact"] > 0

    def test_high_density_node_budget_degrades_and_completes(self):
        enc, tr, manager = make_problem()
        manager.governor.arm(Budget(node_budget=len(manager) + 50))
        result = high_density_reachability(
            tr, enc.initial_states(), rua, on_blowup="subset")
        assert result.complete
        assert count_states(result.reached,
                            enc.state_vars) == TOKEN_RING_STATES
        assert manager.stats.total_degradations > 0

    def test_high_density_step_budget_climbs_full_ladder(self):
        enc, tr, manager = make_problem()
        manager.governor.arm(Budget(step_budget=2_000))
        result = high_density_reachability(
            tr, enc.initial_states(), rua, on_blowup="subset")
        assert result.complete
        assert count_states(result.reached,
                            enc.state_vars) == TOKEN_RING_STATES
        degradations = manager.stats.degradations
        assert degradations["subset"] > 0 and degradations["exact"] > 0

    def test_retry_reorder_traversal_completes(self):
        enc, tr, manager = make_problem()
        manager.governor.arm(Budget(step_budget=2_000))
        result = bfs_reachability(tr, enc.initial_states(),
                                  on_blowup="retry-reorder")
        assert count_states(result.reached,
                            enc.state_vars) == TOKEN_RING_STATES
        assert manager.stats.degradations["reorder"] > 0
