"""Sharded reachability: byte-identity, fault fallback, policy."""

from __future__ import annotations

import pytest

from repro.bdd import io as bdd_io
from repro.fsm import encode
from repro.fsm.benchmarks import comm_controller, counter, token_ring
from repro.fsm.blif import write_blif
from repro.reach import (FrontierSharder, ShardConfig, TransitionRelation,
                         bfs_reachability, choose_split_vars)
from repro.reach.shard import (_RELATIONS, build_spec_circuit,
                               shard_image_worker)

BACKENDS = ["object", "array"]


def build(backend="object", channels=3):
    encoded = encode(comm_controller(channels), backend=backend)
    return encoded, TransitionRelation(encoded)


def traces(result):
    return (result.iterations, result.size_trace, result.frontier_trace,
            len(result.reached), result.reached.sat_count())


class TestConstrain:
    """TransitionRelation.constrain: the algebra under the sharding."""

    def test_image_distributes_over_split_cube(self):
        encoded, tr = build()
        manager = encoded.manager
        frontier = encoded.initial_states()
        frontier = frontier | tr.image(frontier)
        whole = tr.image(frontier)
        for name in (encoded.input_vars[0], encoded.state_vars[0]):
            var = manager.var(name)
            pieces = [
                tr.constrain({name: value}).image(
                    frontier.cofactor({name: value}))
                for value in (False, True)]
            assert (pieces[0] | pieces[1]) == whole, name

    def test_constrained_clusters_drop_the_variable(self):
        encoded, tr = build()
        name = encoded.input_vars[0]
        constrained = tr.constrain({name: True})
        for cluster in constrained.clusters:
            assert name not in cluster.support()
        # The base relation is untouched.
        assert any(name in cluster.support() for cluster in tr.clusters)


class TestByteIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_traces_match_sequential(self, backend, shards):
        encoded, tr = build(backend)
        sequential = bfs_reachability(tr, encoded.initial_states())

        encoded2, tr2 = build(backend)
        config = ShardConfig(shards=shards, min_frontier=0)
        with FrontierSharder(tr2, config) as sharder:
            sharded = bfs_reachability(tr2, encoded2.initial_states(),
                                       sharder=sharder)
        assert traces(sharded) == traces(sequential)
        stats = sharded.shard_stats
        if shards > 1:
            assert stats["shard_images"] > 0
            assert stats["pieces"] >= shards * stats["shard_images"]
        else:
            assert stats["shard_images"] == 0

    @pytest.mark.parametrize("selector", ["relation", "band", "disjoint"])
    def test_every_selector_is_exact(self, selector):
        encoded, tr = build()
        sequential = bfs_reachability(tr, encoded.initial_states())
        encoded2, tr2 = build()
        config = ShardConfig(shards=2, selector=selector, min_frontier=0)
        with FrontierSharder(tr2, config) as sharder:
            sharded = bfs_reachability(tr2, encoded2.initial_states(),
                                       sharder=sharder)
        assert traces(sharded) == traces(sequential)


class TestFaultContainment:
    def test_worker_budget_falls_back_to_exact(self):
        """Every piece blows a 1-node budget in the worker; the
        coordinator recomputes each exactly and the traversal result is
        unchanged (the conftest sweep verifies the graph afterwards)."""
        encoded, tr = build()
        sequential = bfs_reachability(tr, encoded.initial_states())
        encoded2, tr2 = build()
        config = ShardConfig(shards=2, min_frontier=0, node_budget=1)
        with FrontierSharder(tr2, config) as sharder:
            sharded = bfs_reachability(tr2, encoded2.initial_states(),
                                       sharder=sharder)
        assert traces(sharded) == traces(sequential)
        assert sharded.shard_stats["fallbacks"] > 0

    def test_worker_budget_unwinds_cleanly(self):
        """A budget abort inside the worker surfaces as a budget
        outcome, not a crash: the worker process stays reusable and a
        follow-up unbudgeted image on the *same* sharder succeeds."""
        encoded, tr = build()
        frontier = encoded.initial_states()
        frontier = frontier | tr.image(frontier)
        config = ShardConfig(shards=2, min_frontier=0, node_budget=1)
        with FrontierSharder(tr, config) as sharder:
            image, exact = sharder.image(frontier)
            assert exact
            assert sharder.stats.fallbacks > 0
            pids = sharder._pool.worker_pids()
            assert pids  # budget aborts did not kill the workers
            object.__setattr__(config, "node_budget", 0)
            image2, _ = sharder.image(frontier)
            assert sharder._pool.worker_pids() == pids
        assert image == image2 == tr.image(frontier)


class TestPolicy:
    def test_min_frontier_collapses_to_sequential(self):
        encoded, tr = build()
        config = ShardConfig(shards=2, min_frontier=10 ** 6)
        with FrontierSharder(tr, config) as sharder:
            result = bfs_reachability(tr, encoded.initial_states(),
                                      sharder=sharder)
        stats = result.shard_stats
        assert stats["shard_images"] == 0
        assert stats["sequential_images"] == result.iterations

    def test_resplit_threshold_splits_deeper(self):
        encoded, tr = build()
        sequential = bfs_reachability(tr, encoded.initial_states())
        encoded2, tr2 = build()
        config = ShardConfig(shards=2, min_frontier=0,
                             resplit_threshold=2, max_split_depth=3)
        with FrontierSharder(tr2, config) as sharder:
            sharded = bfs_reachability(tr2, encoded2.initial_states(),
                                       sharder=sharder)
        assert traces(sharded) == traces(sequential)
        assert sharded.shard_stats["resplits"] > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ShardConfig(selector="nope")
        with pytest.raises(ValueError):
            ShardConfig(shards=65)

    def test_sharder_close_is_idempotent(self):
        encoded, tr = build()
        sharder = FrontierSharder(tr, ShardConfig(min_frontier=0))
        sharder.image(encoded.initial_states())
        key = sharder._base_key
        assert key in _RELATIONS
        sharder.close()
        assert key not in _RELATIONS
        sharder.close()


class TestSplitVars:
    def test_relation_selector_prefers_shrinking_vars(self):
        encoded, tr = build()
        frontier = encoded.initial_states()
        names = choose_split_vars(tr, frontier, 2)
        assert len(names) == 2
        candidates = set(encoded.input_vars) | set(encoded.state_vars)
        assert set(names) <= candidates

    def test_point_selectors_empty_for_constant_frontier(self):
        encoded, tr = build()
        for selector in ("band", "disjoint"):
            names = choose_split_vars(tr, encoded.manager.true, 2,
                                      selector)
            assert names == []

    def test_point_selector_pads_from_support(self):
        encoded, tr = build()
        frontier = encoded.initial_states()
        names = choose_split_vars(tr, frontier, 3, "band")
        assert len(names) == min(3, len(frontier.support()))
        assert len(set(names)) == len(names)

    def test_unknown_selector_raises(self):
        encoded, tr = build()
        with pytest.raises(ValueError):
            choose_split_vars(tr, encoded.initial_states(), 2, "nope")


class TestWorkerInternals:
    def test_spec_rebuild_without_prewarm(self):
        """A worker handed an unknown base key rebuilds the relation
        from the circuit spec — the spawn-start-method path, exercised
        in-process."""
        encoded, tr = build()
        frontier = encoded.initial_states()
        name = encoded.input_vars[0]
        payload = {
            "base": ("spec-test", 1),
            "spec": ("blif-text", write_blif(encoded.circuit)),
            "backend": "object",
            "assignment": ((name, True),),
            "frontier": bdd_io.dump(frontier),
            "resplit_threshold": 0,
        }
        try:
            result = shard_image_worker(payload)
            assert result["kind"] == "image"
            expected = tr.constrain({name: True}).image(
                frontier.cofactor({name: True}))
            rebuilt_key = ("spec-test", 1, "cube", (name, True))
            worker_manager = _RELATIONS[rebuilt_key][0].manager
            piece = bdd_io.load(worker_manager, result["text"],
                                declare=False)
            transferred = bdd_io.transfer(piece, encoded.manager)
            assert transferred == expected
        finally:
            for key in [k for k in _RELATIONS
                        if k and k[0] == "spec-test"]:
                del _RELATIONS[key]

    def test_worker_refuses_oversized_piece(self):
        encoded, tr = build()
        frontier = encoded.initial_states()
        frontier = frontier | tr.image(frontier)
        name = encoded.input_vars[0]
        key = ("refuse-test",)
        _RELATIONS[key] = (encoded, tr)
        try:
            result = shard_image_worker({
                "base": key,
                "assignment": ((name, False),),
                "frontier": bdd_io.dump(frontier),
                "resplit_threshold": 1,
            })
            assert result["kind"] == "resplit"
            assert result["piece_nodes"] > 1
        finally:
            for k in [k for k in _RELATIONS
                      if k and k[0] == "refuse-test"]:
                del _RELATIONS[k]

    def test_build_spec_circuit_kinds(self, tmp_path):
        circuit = counter(3)
        text = write_blif(circuit)
        path = tmp_path / "c3.blif"
        path.write_text(text)
        assert build_spec_circuit(("blif-text", text)).num_latches == 3
        assert build_spec_circuit(
            ("blif-path", str(path))).num_latches == 3
        ring = build_spec_circuit(("factory", "token_ring", (3,)))
        assert ring.num_latches == token_ring(3).num_latches
        with pytest.raises(ValueError):
            build_spec_circuit(("nope",))
