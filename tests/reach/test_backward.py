"""Backward reachability."""

from __future__ import annotations

from repro.fsm import encode
from repro.fsm.benchmarks import counter, token_ring
from repro.reach import TransitionRelation, bfs_reachability
from repro.reach.backward import backward_reachability, can_reach


class TestBackward:
    def test_counter_everything_reaches_any_value(self):
        encoded = encode(counter(3))
        tr = TransitionRelation(encoded)
        five = encoded.manager.cube({"q0": True, "q1": False,
                                     "q2": True})
        result = backward_reachability(tr, five)
        # The counter wraps, so every state eventually reaches 5.
        assert result.reached.is_true \
            or result.reached.sat_count() == 2 ** encoded.manager.num_vars

    def test_forward_backward_duality(self):
        # target reachable from init  <=>  init in backward(target)
        encoded = encode(token_ring(3))
        tr = TransitionRelation(encoded)
        init = encoded.initial_states()
        forward = bfs_reachability(tr, init).reached
        some_state = encoded.manager.cube(
            {name: False for name in encoded.state_vars})
        target_reachable = not (forward & some_state).is_false
        assert can_reach(tr, init, some_state) == target_reachable

    def test_unreachable_target(self):
        # In the token ring the token is one-hot; the all-zero token
        # configuration is unreachable from reset and cannot reach it
        # backwards either (token stays one-hot under rotation).
        encoded = encode(token_ring(3))
        tr = TransitionRelation(encoded)
        init = encoded.initial_states()
        no_token = encoded.manager.cube({"t0": False, "t1": False,
                                         "t2": False})
        assert not can_reach(tr, init, no_token)

    def test_bounded_backward(self):
        encoded = encode(counter(4))
        tr = TransitionRelation(encoded)
        target = encoded.manager.cube({f"q{i}": True
                                       for i in range(4)})
        result = backward_reachability(tr, target, max_iterations=2)
        assert not result.complete
        assert result.iterations == 2

    def test_target_included(self):
        encoded = encode(counter(3))
        tr = TransitionRelation(encoded)
        target = encoded.manager.cube({"q0": True, "q1": True,
                                       "q2": True})
        result = backward_reachability(tr, target, max_iterations=1)
        assert target <= result.reached
