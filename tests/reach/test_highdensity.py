"""High-density traversal: exactness and statistics."""

from __future__ import annotations

import pytest

from repro.core.approx import (heavy_branch_subset, remap_under_approx,
                               short_paths_subset)
from repro.fsm import encode
from repro.fsm.benchmarks import (counter, shift_queue, token_ring,
                                  triangle_datapath)
from repro.reach import (PartialImagePolicy, TransitionRelation,
                         TraversalLimit, bfs_reachability, count_states,
                         high_density_reachability)

SUBSETTERS = [
    ("rua", lambda f, *, threshold=0: remap_under_approx(f, threshold), 0),
    ("sp", lambda f, *, threshold=0: short_paths_subset(f, threshold), 16),
    ("hb", lambda f, *, threshold=0: heavy_branch_subset(f, threshold), 16),
]


class TestExactness:
    @pytest.mark.parametrize("name,subset,threshold", SUBSETTERS)
    @pytest.mark.parametrize("make", [lambda: counter(4),
                                      lambda: token_ring(3),
                                      lambda: shift_queue(3, 2),
                                      lambda: triangle_datapath(3)])
    def test_reaches_same_states_as_bfs(self, name, subset, threshold,
                                        make):
        circuit = make()
        enc_bfs = encode(circuit)
        tr_bfs = TransitionRelation(enc_bfs)
        exact = bfs_reachability(tr_bfs, enc_bfs.initial_states())
        expected = count_states(exact.reached, enc_bfs.state_vars)

        enc_hd = encode(circuit)
        tr_hd = TransitionRelation(enc_hd)
        result = high_density_reachability(
            tr_hd, enc_hd.initial_states(), subset, threshold=threshold)
        assert result.complete
        assert count_states(result.reached,
                            enc_hd.state_vars) == expected

    def test_exact_with_partial_image(self):
        circuit = shift_queue(3, 2)
        enc_bfs = encode(circuit)
        tr_bfs = TransitionRelation(enc_bfs)
        expected = count_states(
            bfs_reachability(tr_bfs, enc_bfs.initial_states()).reached,
            enc_bfs.state_vars)

        enc = encode(circuit)
        tr = TransitionRelation(enc)
        policy = PartialImagePolicy(
            subset=lambda f, *, threshold=0: remap_under_approx(f, threshold),
            trigger=8, threshold=4)
        result = high_density_reachability(
            tr, enc.initial_states(),
            lambda f, *, threshold=0: remap_under_approx(f, threshold), threshold=0,
            partial=policy)
        assert result.complete
        assert count_states(result.reached, enc.state_vars) == expected
        assert tr.stats.subset_calls > 0


class TestStatistics:
    def test_densities_recorded(self):
        enc = encode(token_ring(3))
        tr = TransitionRelation(enc)
        result = high_density_reachability(
            tr, enc.initial_states(),
            lambda f, *, threshold=0: remap_under_approx(f, threshold))
        assert len(result.subset_densities) == result.iterations
        assert all(d > 0 for d in result.subset_densities)

    def test_max_iterations(self):
        enc = encode(counter(5))
        tr = TransitionRelation(enc)
        result = high_density_reachability(
            tr, enc.initial_states(),
            lambda f, *, threshold=0: remap_under_approx(f, threshold), max_iterations=2)
        assert not result.complete

    def test_deadline_raises(self):
        enc = encode(shift_queue(4, 3))
        tr = TransitionRelation(enc)
        with pytest.raises(TraversalLimit):
            high_density_reachability(
                tr, enc.initial_states(),
                lambda f, *, threshold=0: remap_under_approx(f, threshold), deadline=0.0)

    def test_degenerate_subsetter_falls_back(self):
        # A subsetter that always returns FALSE must not wedge the
        # traversal.
        enc = encode(counter(3))
        tr = TransitionRelation(enc)
        result = high_density_reachability(
            tr, enc.initial_states(), lambda f, *, threshold=0: enc.manager.false)
        assert result.complete
        assert count_states(result.reached, enc.state_vars) == 8
