"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.fsm.benchmarks import counter, token_ring
from repro.fsm.blif import write_blif


@pytest.fixture
def counter_blif(tmp_path):
    path = tmp_path / "counter.blif"
    path.write_text(write_blif(counter(3)))
    return str(path)


@pytest.fixture
def ring_blif(tmp_path):
    path = tmp_path / "ring.blif"
    path.write_text(write_blif(token_ring(3)))
    return str(path)


class TestInfo:
    def test_info(self, counter_blif, capsys):
        assert main(["info", counter_blif]) == 0
        out = capsys.readouterr().out
        assert "latches: 3" in out
        assert "next-state functions" in out


class TestReach:
    def test_bfs(self, counter_blif, capsys):
        assert main(["reach", counter_blif]) == 0
        out = capsys.readouterr().out
        assert "states:     8" in out
        assert "complete:   True" in out

    @pytest.mark.parametrize("method", ["rua", "sp", "hb"])
    def test_high_density_methods(self, ring_blif, method, capsys):
        assert main(["reach", ring_blif, "--method", method,
                     "--threshold", "16"]) == 0
        out = capsys.readouterr().out
        assert "complete:   True" in out

    def test_bounded(self, counter_blif, capsys):
        assert main(["reach", counter_blif, "--max-iterations",
                     "2"]) == 0
        out = capsys.readouterr().out
        assert "complete:   False" in out


class TestApprox:
    def test_table_printed(self, ring_blif, capsys):
        assert main(["approx", ring_blif, "--min-nodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "RUA" in out
        assert "C2" in out

    def test_min_nodes_filter(self, counter_blif, capsys):
        assert main(["approx", counter_blif, "--min-nodes",
                     "10000"]) == 1

    def test_methods_subset(self, ring_blif, capsys):
        assert main(["approx", ring_blif, "--min-nodes", "1",
                     "--methods", "hb,rua"]) == 0
        out = capsys.readouterr().out
        assert "HB" in out
        assert "RUA" in out
        assert "SP" not in out

    def test_unknown_method_rejected(self, ring_blif):
        with pytest.raises(SystemExit):
            main(["approx", ring_blif, "--methods", "nope"])


class TestRuntimeOptions:
    def test_reach_stats(self, counter_blif, capsys):
        assert main(["reach", counter_blif, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "states:     8" in out
        assert "computed table" in out
        assert "live nodes:" in out

    def test_stats_on_every_command(self, ring_blif, capsys):
        for cmd in (["info"], ["approx", "--min-nodes", "1"],
                    ["decomp"]):
            assert main([cmd[0], ring_blif, *cmd[1:], "--stats"]) == 0
            assert "computed table" in capsys.readouterr().out

    def test_backend_flag_preserves_results(self, counter_blif, capsys,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "object")
        assert main(["reach", counter_blif]) == 0
        baseline = capsys.readouterr().out
        assert main(["reach", counter_blif, "--backend", "array",
                     "--stats"]) == 0
        arrayed = capsys.readouterr().out
        # The flag is exported so engine workers inherit it.
        import os
        assert os.environ["REPRO_BACKEND"] == "array"
        assert "backend:         array" in arrayed
        for line in baseline.splitlines():
            if line.startswith(("states:", "complete:", "|reached|:")):
                assert line in arrayed

    def test_backend_flag_rejects_unknown(self, counter_blif):
        with pytest.raises(SystemExit):
            main(["reach", counter_blif, "--backend", "linked-list"])

    def test_runtime_knobs_preserve_results(self, counter_blif, capsys):
        assert main(["reach", counter_blif]) == 0
        baseline = capsys.readouterr().out
        assert main(["reach", counter_blif, "--cache-limit", "64",
                     "--gc-threshold", "32"]) == 0
        bounded = capsys.readouterr().out
        assert "states:     8" in baseline
        assert "states:     8" in bounded
        for line in baseline.splitlines():
            if line.startswith(("states:", "complete:", "|reached|:")):
                assert line in bounded


class TestDecomp:
    def test_outputs_decomposed(self, ring_blif, capsys):
        assert main(["decomp", ring_blif]) == 0
        out = capsys.readouterr().out
        assert "Cofactor" in out

    def test_bad_command(self):
        with pytest.raises(SystemExit):
            main(["nope"])


class TestServeCall:
    """`repro call` against an in-process daemon."""

    @pytest.fixture
    def served(self):
        from repro.serve import ServerThread

        with ServerThread(backend="object") as handle:
            yield handle

    def test_call_health(self, served, capsys):
        assert main(["call", "health", "--port",
                     str(served.port)]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["status"] == "ok"
        assert out["backend"] == "object"

    def test_call_verb_with_params(self, served, capsys):
        assert main(["call", "var", '{"name": "a"}', "--port",
                     str(served.port)]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["handle"] == "h1"
        assert out["fresh"] is True

    def test_call_budget_error_exits_3(self, served, capsys):
        # One-shot sessions: the handle from a previous `repro call`
        # is gone, so drive a self-contained starved request.
        # counter(8) is big enough that reach crosses a governor
        # checkpoint (stride 64); tiny circuits never would.
        blif = write_blif(counter(8))
        assert main(["call", "reach", json.dumps({"blif": blif}),
                     "--port", str(served.port),
                     "--step-budget", "1"]) == 3
        err = capsys.readouterr().err
        assert "budget" in err

    def test_call_server_error_exits_1(self, served, capsys):
        assert main(["call", "frobnicate", "--port",
                     str(served.port)]) == 1
        assert "unknown-verb" in capsys.readouterr().err

    def test_call_bad_params_rejected(self, served):
        with pytest.raises(SystemExit):
            main(["call", "health", "[1,2]", "--port",
                  str(served.port)])

    def test_call_unreachable_server(self):
        with pytest.raises(SystemExit):
            main(["call", "health", "--port", "1",
                  "--connect-timeout", "0.2"])

    def test_serve_rejects_unknown_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "linked-list")
        with pytest.raises(SystemExit):
            main(["serve", "--port", "0"])
