"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.fsm.benchmarks import counter, token_ring
from repro.fsm.blif import write_blif


@pytest.fixture
def counter_blif(tmp_path):
    path = tmp_path / "counter.blif"
    path.write_text(write_blif(counter(3)))
    return str(path)


@pytest.fixture
def ring_blif(tmp_path):
    path = tmp_path / "ring.blif"
    path.write_text(write_blif(token_ring(3)))
    return str(path)


class TestInfo:
    def test_info(self, counter_blif, capsys):
        assert main(["info", counter_blif]) == 0
        out = capsys.readouterr().out
        assert "latches: 3" in out
        assert "next-state functions" in out


class TestReach:
    def test_bfs(self, counter_blif, capsys):
        assert main(["reach", counter_blif]) == 0
        out = capsys.readouterr().out
        assert "states:     8" in out
        assert "complete:   True" in out

    @pytest.mark.parametrize("method", ["rua", "sp", "hb"])
    def test_high_density_methods(self, ring_blif, method, capsys):
        assert main(["reach", ring_blif, "--method", method,
                     "--threshold", "16"]) == 0
        out = capsys.readouterr().out
        assert "complete:   True" in out

    def test_bounded(self, counter_blif, capsys):
        assert main(["reach", counter_blif, "--max-iterations",
                     "2"]) == 0
        out = capsys.readouterr().out
        assert "complete:   False" in out


class TestApprox:
    def test_table_printed(self, ring_blif, capsys):
        assert main(["approx", ring_blif, "--min-nodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "RUA" in out
        assert "C2" in out

    def test_min_nodes_filter(self, counter_blif, capsys):
        assert main(["approx", counter_blif, "--min-nodes",
                     "10000"]) == 1

    def test_methods_subset(self, ring_blif, capsys):
        assert main(["approx", ring_blif, "--min-nodes", "1",
                     "--methods", "hb,rua"]) == 0
        out = capsys.readouterr().out
        assert "HB" in out
        assert "RUA" in out
        assert "SP" not in out

    def test_unknown_method_rejected(self, ring_blif):
        with pytest.raises(SystemExit):
            main(["approx", ring_blif, "--methods", "nope"])


class TestRuntimeOptions:
    def test_reach_stats(self, counter_blif, capsys):
        assert main(["reach", counter_blif, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "states:     8" in out
        assert "computed table" in out
        assert "live nodes:" in out

    def test_stats_on_every_command(self, ring_blif, capsys):
        for cmd in (["info"], ["approx", "--min-nodes", "1"],
                    ["decomp"]):
            assert main([cmd[0], ring_blif, *cmd[1:], "--stats"]) == 0
            assert "computed table" in capsys.readouterr().out

    def test_backend_flag_preserves_results(self, counter_blif, capsys,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "object")
        assert main(["reach", counter_blif]) == 0
        baseline = capsys.readouterr().out
        assert main(["reach", counter_blif, "--backend", "array",
                     "--stats"]) == 0
        arrayed = capsys.readouterr().out
        # The flag is exported so engine workers inherit it.
        import os
        assert os.environ["REPRO_BACKEND"] == "array"
        assert "backend:         array" in arrayed
        for line in baseline.splitlines():
            if line.startswith(("states:", "complete:", "|reached|:")):
                assert line in arrayed

    def test_backend_flag_rejects_unknown(self, counter_blif):
        with pytest.raises(SystemExit):
            main(["reach", counter_blif, "--backend", "linked-list"])

    def test_runtime_knobs_preserve_results(self, counter_blif, capsys):
        assert main(["reach", counter_blif]) == 0
        baseline = capsys.readouterr().out
        assert main(["reach", counter_blif, "--cache-limit", "64",
                     "--gc-threshold", "32"]) == 0
        bounded = capsys.readouterr().out
        assert "states:     8" in baseline
        assert "states:     8" in bounded
        for line in baseline.splitlines():
            if line.startswith(("states:", "complete:", "|reached|:")):
                assert line in bounded


class TestDecomp:
    def test_outputs_decomposed(self, ring_blif, capsys):
        assert main(["decomp", ring_blif]) == 0
        out = capsys.readouterr().out
        assert "Cofactor" in out

    def test_bad_command(self):
        with pytest.raises(SystemExit):
            main(["nope"])


class TestServeCall:
    """`repro call` against an in-process daemon."""

    @pytest.fixture
    def served(self):
        from repro.serve import ServerThread

        with ServerThread(backend="object") as handle:
            yield handle

    def test_call_health(self, served, capsys):
        assert main(["call", "health", "--port",
                     str(served.port)]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["status"] == "ok"
        assert out["backend"] == "object"

    def test_call_verb_with_params(self, served, capsys):
        assert main(["call", "var", '{"name": "a"}', "--port",
                     str(served.port)]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["handle"] == "h1"
        assert out["fresh"] is True

    def test_call_budget_error_exits_3(self, served, capsys):
        # One-shot sessions: the handle from a previous `repro call`
        # is gone, so drive a self-contained starved request.
        # counter(8) is big enough that reach crosses a governor
        # checkpoint (stride 64); tiny circuits never would.
        blif = write_blif(counter(8))
        assert main(["call", "reach", json.dumps({"blif": blif}),
                     "--port", str(served.port),
                     "--step-budget", "1"]) == 3
        err = capsys.readouterr().err
        assert "budget" in err

    def test_call_server_error_exits_1(self, served, capsys):
        assert main(["call", "frobnicate", "--port",
                     str(served.port)]) == 1
        assert "unknown-verb" in capsys.readouterr().err

    def test_call_bad_params_rejected(self, served):
        with pytest.raises(SystemExit):
            main(["call", "health", "[1,2]", "--port",
                  str(served.port)])

    def test_call_unreachable_server(self):
        with pytest.raises(SystemExit):
            main(["call", "health", "--port", "1",
                  "--connect-timeout", "0.2"])

    def test_serve_rejects_unknown_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "linked-list")
        with pytest.raises(SystemExit):
            main(["serve", "--port", "0"])


def stable_reach_lines(out: str) -> list[str]:
    """Reach output minus the wall-clock and checkpoint-count lines."""
    return [line for line in out.splitlines()
            if not line.startswith(("time:", "checkpoint:"))]


class TestSaveLoad:
    def test_save_then_list_and_load(self, counter_blif, tmp_path,
                                     capsys):
        store = str(tmp_path / "store")
        assert main(["save", counter_blif, "--store", store,
                     "--functions", "all", "--tag", "run1"]) == 0
        out = capsys.readouterr().out
        assert "saved to" in out

        assert main(["load", "--store", store]) == 0
        listing = capsys.readouterr().out
        assert "/next/" in listing
        assert "run1" in listing
        name = next(line.split()[0] for line in listing.splitlines()
                    if "/next/" in line)

        assert main(["load", name, "--store", store]) == 0
        out = capsys.readouterr().out
        assert f"name:     {name}" in out
        assert "minterms:" in out

        assert main(["load", name, "--store", store, "--dump"]) == 0
        dumped = capsys.readouterr().out
        assert dumped.startswith("repro-bdd 1\n")
        assert "root " in dumped

    def test_list_prefix_filters(self, counter_blif, tmp_path,
                                 capsys):
        store = str(tmp_path / "store")
        assert main(["save", counter_blif, "--store", store,
                     "--functions", "all"]) == 0
        capsys.readouterr()
        assert main(["load", "no/such/prefix", "--store", store,
                     "--list"]) == 1
        assert "no entries" in capsys.readouterr().out

    def test_unknown_name_exits_1(self, counter_blif, tmp_path,
                                  capsys):
        store = str(tmp_path / "store")
        assert main(["save", counter_blif, "--store", store]) == 0
        capsys.readouterr()
        assert main(["load", "ghost", "--store", store]) == 1
        assert "store:" in capsys.readouterr().err

    def test_missing_store_exits_1(self, tmp_path, capsys):
        assert main(["load", "--store",
                     str(tmp_path / "missing")]) == 1
        assert "no store" in capsys.readouterr().err

    def test_corrupt_object_exits_4(self, counter_blif, tmp_path,
                                    capsys):
        from repro.store import BDDStore

        store_dir = tmp_path / "store"
        assert main(["save", counter_blif, "--store",
                     str(store_dir)]) == 0
        capsys.readouterr()
        store = BDDStore(store_dir)
        name = store.entries()[0]["name"]
        path = store._object_path(store.entries()[0]["hash"])
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        assert main(["load", name, "--store", str(store_dir)]) == 4
        assert "store:" in capsys.readouterr().err


class TestReachCheckpoint:
    def test_checkpointed_run_reports_saves(self, counter_blif,
                                            capsys, tmp_path):
        ck = str(tmp_path / "ck")
        assert main(["reach", counter_blif, "--checkpoint", ck]) == 0
        out = capsys.readouterr().out
        assert "checkpoint: reach/" in out
        assert "save(s) this run" in out

    def test_interrupt_then_resume_matches_plain_run(self,
                                                     counter_blif,
                                                     capsys,
                                                     tmp_path):
        assert main(["reach", counter_blif]) == 0
        oracle = stable_reach_lines(capsys.readouterr().out)

        ck = str(tmp_path / "ck")
        assert main(["reach", counter_blif, "--checkpoint", ck,
                     "--max-iterations", "2"]) == 0
        capsys.readouterr()
        assert main(["reach", counter_blif, "--checkpoint", ck,
                     "--resume"]) == 0
        assert stable_reach_lines(capsys.readouterr().out) == oracle

    def test_resume_requires_checkpoint_dir(self, counter_blif):
        with pytest.raises(SystemExit, match="--checkpoint"):
            main(["reach", counter_blif, "--resume"])

    def test_resume_different_problem_refused(self, counter_blif,
                                              capsys, tmp_path):
        ck = str(tmp_path / "ck")
        assert main(["reach", counter_blif, "--checkpoint", ck,
                     "--max-iterations", "1"]) == 0
        capsys.readouterr()
        # Same circuit and method — so the same checkpoint name — but
        # a different traversal configuration: the spec digest (which
        # also covers knobs the name can't, like the cluster limit)
        # must refuse the resume instead of blending two traversals.
        assert main(["reach", counter_blif, "--checkpoint", ck,
                     "--resume", "--cluster-limit", "7"]) == 1
        assert "different problem" in capsys.readouterr().err

    def test_checkpoint_every_cadence(self, counter_blif, capsys,
                                      tmp_path):
        ck = str(tmp_path / "ck")
        assert main(["reach", counter_blif, "--checkpoint", ck,
                     "--checkpoint-every", "100"]) == 0
        out = capsys.readouterr().out
        # Cadence 100 > diameter: only the final fixpoint save runs.
        assert "(1 save(s) this run)" in out


class TestKillResume:
    def test_kill9_mid_run_then_resume_byte_identical(self, tmp_path):
        """The ISSUE.md acceptance scenario end to end: kill -9 a
        checkpointing reach mid-flight, resume it, and the resumed
        output (reached set included) matches an uninterrupted
        sequential run exactly."""
        import os
        import signal
        import subprocess
        import sys
        import time

        from repro.fsm.benchmarks import counter
        from repro.fsm.blif import write_blif
        from repro.store import BDDStore

        blif = tmp_path / "counter.blif"
        blif.write_text(write_blif(counter(6)))
        ck = tmp_path / "ck"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(
                __file__))), "src") + os.pathsep + env.get(
                    "PYTHONPATH", "")

        oracle = subprocess.run(
            [sys.executable, "-m", "repro", "reach", str(blif)],
            capture_output=True, text=True, env=env, timeout=120)
        assert oracle.returncode == 0, oracle.stderr

        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "reach", str(blif),
             "--checkpoint", str(ck)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env)
        try:
            # Kill as soon as the first checkpoint lands on disk —
            # mid-traversal by construction (counter(6) runs 63
            # iterations).
            deadline = time.monotonic() + 60
            store = None
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    break
                try:
                    store = BDDStore(ck, create=False)
                    if len(store) > 0:
                        break
                except Exception:
                    pass
                time.sleep(0.01)
            assert process.poll() is None, (
                "traversal finished before the kill; enlarge the "
                "circuit")
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

        resumed = subprocess.run(
            [sys.executable, "-m", "repro", "reach", str(blif),
             "--checkpoint", str(ck), "--resume"],
            capture_output=True, text=True, env=env, timeout=120)
        assert resumed.returncode == 0, resumed.stderr
        assert stable_reach_lines(resumed.stdout) \
            == stable_reach_lines(oracle.stdout)

        # Byte-level check on the reached set itself, not just the
        # summary: the final checkpoint's reached-set dump equals a
        # fresh in-process oracle's.
        from repro.bdd import Manager, dump
        from repro.fsm import encode
        from repro.reach import TransitionRelation, bfs_reachability

        encoded = encode(counter(6))
        result = bfs_reachability(TransitionRelation(encoded),
                                  encoded.initial_states())
        roots, extra = BDDStore(ck).load_roots(
            Manager(), f"reach/{counter(6).name}/bfs")
        assert extra["meta"]["complete"] is True
        assert dump(roots["reached"]) == dump(result.reached)
