"""Am2910 model: differential test against the reference semantics."""

from __future__ import annotations

import random

import pytest

from repro.fsm.am2910 import INSTRUCTIONS, am2910, reference_step


def to_latch_state(width: int, depth: int, state: dict) -> dict:
    sp_bits = max(1, (depth).bit_length())
    out = {}
    for i in range(width):
        out[f"pc{i}"] = bool(state["pc"] >> i & 1)
        out[f"r{i}"] = bool(state["r"] >> i & 1)
    for i in range(sp_bits):
        out[f"sp{i}"] = bool(state["sp"] >> i & 1)
    for k in range(depth):
        for i in range(width):
            out[f"stk{k}_{i}"] = bool(state["stack"][k] >> i & 1)
    return out


def make_inputs(width: int, code: int, cc: bool, d: int) -> dict:
    inputs = {"cc": cc}
    for i in range(4):
        inputs[f"i{i}"] = bool(code >> i & 1)
    for i in range(width):
        inputs[f"d{i}"] = bool(d >> i & 1)
    return inputs


class TestModel:
    def test_latch_count_matches_benchmark(self):
        # width 12, depth 6: 12 + 12 + 72 + 3 = 99, the benchmark's FF
        # count.
        circuit = am2910(12, 6)
        assert circuit.num_latches == 99

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            am2910(0, 3)

    def test_random_differential(self):
        width, depth = 4, 3
        circuit = am2910(width, depth)
        rng = random.Random(99)
        state = {"pc": 0, "r": 0, "sp": 0, "stack": (0,) * depth}
        for _ in range(600):
            code = rng.randrange(16)
            cc = rng.random() < 0.5
            d = rng.randrange(1 << width)
            inputs = make_inputs(width, code, cc, d)
            _, next_latches = circuit.simulate(
                inputs, to_latch_state(width, depth, state))
            state = reference_step(width, depth, state,
                                   {"i": code, "cc": cc, "d": d})
            assert next_latches == to_latch_state(width, depth, state)

    @pytest.mark.parametrize("name", INSTRUCTIONS)
    def test_each_instruction_differential(self, name):
        width, depth = 3, 2
        circuit = am2910(width, depth)
        code = INSTRUCTIONS.index(name)
        rng = random.Random(code)
        for _ in range(40):
            state = {"pc": rng.randrange(8), "r": rng.randrange(8),
                     "sp": rng.randrange(depth + 1),
                     "stack": tuple(rng.randrange(8)
                                    for _ in range(depth))}
            cc = rng.random() < 0.5
            d = rng.randrange(8)
            inputs = make_inputs(width, code, cc, d)
            _, next_latches = circuit.simulate(
                inputs, to_latch_state(width, depth, state))
            expected = reference_step(width, depth, state,
                                      {"i": code, "cc": cc, "d": d})
            assert next_latches == to_latch_state(width, depth,
                                                  expected), state


class TestReferenceSemantics:
    def test_jz_clears_stack(self):
        state = {"pc": 5, "r": 2, "sp": 2, "stack": (3, 4)}
        nxt = reference_step(3, 2, state, {"i": 0, "cc": True, "d": 6})
        assert nxt["pc"] == 0 and nxt["sp"] == 0

    def test_push_saturates(self):
        state = {"pc": 1, "r": 0, "sp": 2, "stack": (3, 4)}
        nxt = reference_step(3, 2, state, {"i": 4, "cc": False, "d": 0})
        assert nxt["sp"] == 2  # full: no change
        assert nxt["stack"] == (3, 4)

    def test_pop_on_empty_is_noop(self):
        state = {"pc": 1, "r": 0, "sp": 0, "stack": (0, 0)}
        nxt = reference_step(3, 2, state, {"i": 10, "cc": True, "d": 0})
        assert nxt["sp"] == 0
        assert nxt["pc"] == 0  # TOS of empty stack reads 0

    def test_rfct_loops_until_counter_zero(self):
        state = {"pc": 4, "r": 2, "sp": 1, "stack": (7, 0)}
        nxt = reference_step(3, 2, state, {"i": 8, "cc": True, "d": 0})
        assert nxt["pc"] == 7 and nxt["r"] == 1 and nxt["sp"] == 1
        state = dict(nxt)
        nxt = reference_step(3, 2, state, {"i": 8, "cc": True, "d": 0})
        assert nxt["pc"] == 7 and nxt["r"] == 0
        state = dict(nxt)
        nxt = reference_step(3, 2, state, {"i": 8, "cc": True, "d": 0})
        # counter exhausted: fall through and pop
        assert nxt["pc"] == 0 and nxt["sp"] == 0

    def test_cont_increments(self):
        state = {"pc": 6, "r": 0, "sp": 0, "stack": (0, 0)}
        nxt = reference_step(3, 2, state, {"i": 14, "cc": False, "d": 0})
        assert nxt["pc"] == 7
        nxt = reference_step(3, 2, nxt, {"i": 14, "cc": False, "d": 0})
        assert nxt["pc"] == 0  # wraps
