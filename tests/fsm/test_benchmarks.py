"""Benchmark circuit generators: structural sanity and behaviour."""

from __future__ import annotations

import random

import pytest

from repro.fsm.benchmarks import (comm_controller, counter, counters,
                                  lfsr, lfsr_accumulator,
                                  pipeline_controller, rotator_sum,
                                  serial_multiplier, shift_queue,
                                  subset_sum_datapath, token_ring,
                                  triangle_datapath, mult_accumulator)

ALL_GENERATORS = [
    lambda: counter(4),
    lambda: lfsr(6),
    lambda: lfsr_accumulator(4),
    lambda: shift_queue(3, 2),
    lambda: counters(2, 3),
    lambda: token_ring(3),
    lambda: comm_controller(4, 2),
    lambda: pipeline_controller(3, 3),
    lambda: rotator_sum(4),
    lambda: triangle_datapath(4),
    lambda: mult_accumulator(4),
    lambda: subset_sum_datapath(4),
    lambda: serial_multiplier(4),
]


class TestGenerators:
    @pytest.mark.parametrize("make", ALL_GENERATORS)
    def test_builds_and_simulates(self, make):
        circuit = make()
        assert circuit.num_latches > 0
        state = circuit.initial_state()
        rng = random.Random(1)
        for _ in range(20):
            inputs = {name: rng.random() < 0.5
                      for name in circuit.inputs}
            outs, state = circuit.simulate(inputs, state)
            assert set(state) == {latch.name
                                  for latch in circuit.latches}
            assert set(outs) == set(circuit.outputs)

    def test_lfsr_full_period(self):
        circuit = lfsr(4, taps=(3, 2))
        state = circuit.initial_state()
        seen = set()
        for _ in range(20):
            key = tuple(sorted(state.items()))
            if key in seen:
                break
            seen.add(key)
            _, state = circuit.simulate({}, state)
        assert len(seen) == 15  # maximal period for x^4+x^3+1

    def test_counter_wraps(self):
        circuit = counter(3)
        state = circuit.initial_state()
        for _ in range(8):
            _, state = circuit.simulate({"en": True}, state)
        assert all(not v for v in state.values())

    def test_subset_sum_requires_odd_step(self):
        with pytest.raises(ValueError):
            subset_sum_datapath(4, step=2)

    def test_serial_multiplier_accumulates_multiples(self):
        width = 4
        circuit = serial_multiplier(width)
        state = circuit.initial_state()
        # Load X = 3 on the first cycle.
        inputs = {"en": False, "d0": True, "d1": True, "d2": False,
                  "d3": False}
        _, state = circuit.simulate(inputs, state)
        for step in range(1, 6):
            inputs = {"en": True, "d0": False, "d1": False,
                      "d2": False, "d3": False}
            _, state = circuit.simulate(inputs, state)
            acc = sum(state[f"a{i}"] << i for i in range(width))
            assert acc == (3 * step) % 16

    def test_queue_fills_and_reports_full(self):
        circuit = shift_queue(2, 1)
        state = circuit.initial_state()
        for _ in range(4):
            outs, state = circuit.simulate(
                {"push": True, "pop": False, "d0": True}, state)
        assert outs["full"]

    def test_token_ring_token_is_one_hot(self):
        circuit = token_ring(4)
        state = circuit.initial_state()
        rng = random.Random(2)
        for _ in range(30):
            inputs = {name: rng.random() < 0.5
                      for name in circuit.inputs}
            _, state = circuit.simulate(inputs, state)
            assert sum(state[f"t{i}"] for i in range(4)) == 1
