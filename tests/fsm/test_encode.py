"""Circuit -> BDD encoding."""

from __future__ import annotations

import random

from repro.fsm import encode
from repro.fsm.benchmarks import counter, token_ring


class TestEncode:
    def test_variable_sets(self):
        enc = encode(counter(3))
        assert enc.input_vars == ["en"]
        assert enc.state_vars == ["q0", "q1", "q2"]
        assert enc.next_vars == ["q0'", "q1'", "q2'"]
        assert set(enc.manager.var_names) == {"en", "q0", "q1", "q2",
                                              "q0'", "q1'", "q2'"}

    def test_interleaved_order(self):
        enc = encode(counter(3))
        order = enc.manager.var_names
        for present, nxt in zip(enc.state_vars, enc.next_vars):
            assert order.index(nxt) == order.index(present) + 1

    def test_inputs_last_option(self):
        enc = encode(counter(3), inputs_first=False)
        order = enc.manager.var_names
        assert order[-1] == "en"

    def test_next_functions_match_simulation(self):
        circuit = token_ring(3)
        enc = encode(circuit)
        rng = random.Random(5)
        for _ in range(40):
            inputs = {name: rng.random() < 0.5
                      for name in circuit.inputs}
            state = {latch.name: rng.random() < 0.5
                     for latch in circuit.latches}
            _, expected = circuit.simulate(inputs, state)
            env = dict(inputs)
            env.update(state)
            for name, delta in zip(enc.state_vars,
                                   enc.next_functions):
                full = {v: env.get(v, False)
                        for v in enc.manager.var_names}
                assert delta(**full) == expected[name], name

    def test_output_functions_match_simulation(self):
        circuit = token_ring(3)
        enc = encode(circuit)
        rng = random.Random(6)
        for _ in range(20):
            inputs = {name: rng.random() < 0.5
                      for name in circuit.inputs}
            state = {latch.name: rng.random() < 0.5
                     for latch in circuit.latches}
            outs, _ = circuit.simulate(inputs, state)
            env = dict(inputs)
            env.update(state)
            for name, function in enc.output_functions.items():
                full = {v: env.get(v, False)
                        for v in enc.manager.var_names}
                assert function(**full) == outs[name], name

    def test_initial_states_cube(self):
        circuit = counter(4)
        enc = encode(circuit)
        init = enc.initial_states()
        assert init.sat_count(len(enc.state_vars) +
                              enc.manager.num_vars -
                              len(enc.state_vars)) \
            == 2 ** (enc.manager.num_vars - len(enc.state_vars))
        assignment = {f"q{i}": False for i in range(4)}
        assert init == enc.manager.cube(assignment)

    def test_next_of_mapping(self):
        enc = encode(counter(2))
        assert enc.next_of == {"q0": "q0'", "q1": "q1'"}
