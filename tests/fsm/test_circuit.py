"""Circuit builder and simulation."""

from __future__ import annotations

import pytest

from repro.fsm import CircuitBuilder, eval_net


class TestBuilder:
    def test_duplicate_signal_rejected(self):
        b = CircuitBuilder("t")
        b.input("a")
        with pytest.raises(ValueError):
            b.latch("a")

    def test_unset_latch_rejected(self):
        b = CircuitBuilder("t")
        b.latch("q")
        with pytest.raises(ValueError):
            b.build()

    def test_set_next_foreign_net_rejected(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        with pytest.raises(ValueError):
            b.set_next(a, a)

    def test_vector_mismatch(self):
        b = CircuitBuilder("t")
        qs = b.latches("q", 3)
        with pytest.raises(ValueError):
            b.set_next_vector(qs, qs[:2])


class TestGateSimplification:
    def test_constants_fold(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        assert (a & b.const0) is b.const0
        assert (a & b.const1) is a
        assert (a | b.const1) is b.const1
        assert (a ^ b.const0) is a
        assert (a ^ a) is b.const0
        assert (~~a) is a

    def test_hash_consing(self):
        b = CircuitBuilder("t")
        x, y = b.input("x"), b.input("y")
        assert (x & y) is (y & x)
        assert (x ^ y) is (y ^ x)

    def test_xor_with_one_is_not(self):
        b = CircuitBuilder("t")
        x = b.input("x")
        assert (x ^ b.const1) is (~x)


class TestEvalNet:
    def test_mux(self):
        b = CircuitBuilder("t")
        s, p, q = b.input("s"), b.input("p"), b.input("q")
        mux = s.ite(p, q)
        assert eval_net(mux, {"s": True, "p": True, "q": False})
        assert not eval_net(mux, {"s": False, "p": True, "q": False})

    def test_vector_helpers(self):
        b = CircuitBuilder("t")
        bits = b.inputs("d", 4)
        for value in range(16):
            env = {f"d{i}": bool(value >> i & 1) for i in range(4)}
            inc = b.increment(bits)
            got = sum(eval_net(x, env) << i for i, x in enumerate(inc))
            assert got == (value + 1) % 16
            dec = b.decrement(bits)
            got = sum(eval_net(x, env) << i for i, x in enumerate(dec))
            assert got == (value - 1) % 16

    def test_adder(self):
        b = CircuitBuilder("t")
        xs = b.inputs("x", 3)
        ys = b.inputs("y", 3)
        total = b.add(xs, ys)
        for p in range(8):
            for q in range(8):
                env = {f"x{i}": bool(p >> i & 1) for i in range(3)}
                env.update({f"y{i}": bool(q >> i & 1) for i in range(3)})
                got = sum(eval_net(t, env) << i
                          for i, t in enumerate(total))
                assert got == (p + q) % 8

    def test_comparators(self):
        b = CircuitBuilder("t")
        bits = b.inputs("d", 3)
        for value in range(8):
            env = {f"d{i}": bool(value >> i & 1) for i in range(3)}
            assert eval_net(b.equals_constant(bits, value), env)
            assert eval_net(b.is_zero(bits), env) == (value == 0)


class TestSimulate:
    def test_counter_behaviour(self):
        from repro.fsm.benchmarks import counter

        circ = counter(3)
        state = circ.initial_state()
        for step in range(10):
            expected = step % 8
            got = sum(state[f"q{i}"] << i for i in range(3))
            assert got == expected
            _, state = circ.simulate({"en": True}, state)

    def test_disabled_counter_freezes(self):
        from repro.fsm.benchmarks import counter

        circ = counter(3)
        state = circ.initial_state()
        _, nxt = circ.simulate({"en": False}, state)
        assert nxt == state
