"""BLIF parsing and writing."""

from __future__ import annotations

import itertools

import pytest

from repro.fsm.blif import BlifError, parse_blif, write_blif
from repro.fsm.benchmarks import counter, token_ring

SIMPLE = """
.model toy
.inputs a b
.outputs f
.names a b f
11 1
.end
"""

LATCHED = """
.model seq
.inputs d
.outputs q
.latch nd q re clk 1
.names d nd
1 1
.names q qo
1 1
.outputs qo
.end
"""


class TestParse:
    def test_and_gate(self):
        circuit = parse_blif(SIMPLE)
        assert circuit.name == "toy"
        assert circuit.inputs == ["a", "b"]
        outs, _ = circuit.simulate({"a": True, "b": True}, {})
        assert outs["f"]
        outs, _ = circuit.simulate({"a": True, "b": False}, {})
        assert not outs["f"]

    def test_latch_with_init(self):
        circuit = parse_blif(LATCHED)
        assert circuit.num_latches == 1
        assert circuit.latches[0].init is True
        state = circuit.initial_state()
        _, nxt = circuit.simulate({"d": False}, state)
        assert nxt == {"q": False}

    def test_dont_care_rows(self):
        text = """
.model dc
.inputs a b c
.outputs f
.names a b c f
1-0 1
01- 1
.end
"""
        circuit = parse_blif(text)
        for a, b, c in itertools.product([False, True], repeat=3):
            outs, _ = circuit.simulate({"a": a, "b": b, "c": c}, {})
            assert outs["f"] == ((a and not c) or ((not a) and b))

    def test_complemented_cover(self):
        text = """
.model comp
.inputs a b
.outputs f
.names a b f
11 0
.end
"""
        circuit = parse_blif(text)
        outs, _ = circuit.simulate({"a": True, "b": True}, {})
        assert not outs["f"]
        outs, _ = circuit.simulate({"a": False, "b": True}, {})
        assert outs["f"]

    def test_constant_names(self):
        text = """
.model k
.outputs f
.names f
1
.end
"""
        circuit = parse_blif(text)
        outs, _ = circuit.simulate({}, {})
        assert outs["f"]

    def test_comments_and_continuations(self):
        text = """
# a comment
.model c
.inputs a \\
 b
.outputs f
.names a b f   # trailing comment
11 1
.end
"""
        circuit = parse_blif(text)
        assert circuit.inputs == ["a", "b"]

    def test_errors(self):
        with pytest.raises(BlifError):
            parse_blif(".model x\n.latch a\n.end")
        with pytest.raises(BlifError):
            parse_blif(".model x\n.inputs a\n.outputs f\n"
                       ".names a f\n111 1\n.end")
        with pytest.raises(BlifError):
            parse_blif(".model x\n.outputs f\n.end")
        with pytest.raises(BlifError):
            parse_blif("11 1\n.end")


class TestRoundTrip:
    @pytest.mark.parametrize("make", [lambda: counter(3),
                                      lambda: token_ring(3)])
    def test_write_then_parse_equivalent(self, make, rng):
        original = make()
        text = write_blif(original)
        parsed = parse_blif(text)
        assert set(parsed.inputs) == set(original.inputs)
        assert parsed.num_latches == original.num_latches
        # Differential simulation from reset.
        state_o = original.initial_state()
        state_p = parsed.initial_state()
        for _ in range(30):
            inputs = {name: rng.random() < 0.5
                      for name in original.inputs}
            outs_o, state_o = original.simulate(inputs, state_o)
            outs_p, state_p = parsed.simulate(inputs, state_p)
            assert outs_o == {k: outs_p[k] for k in outs_o}
            assert state_o == state_p
