"""Manager runtime layer: bounded computed table, auto-GC, statistics."""

from __future__ import annotations

import sys

import pytest

from repro.bdd import ComputedTable, Manager
from repro.fsm.benchmarks import counter, token_ring
from repro.fsm.encode import encode
from repro.reach.bfs import bfs_reachability, count_states
from repro.reach.highdensity import high_density_reachability
from repro.reach.transition import TransitionRelation


class TestComputedTable:
    def test_unbounded_by_default(self):
        table = ComputedTable()
        for i in range(1000):
            table.insert("and", ("and", i), i)
        assert len(table) == 1000
        assert table.totals().evictions == 0

    def test_bounded_evicts(self):
        table = ComputedTable(limit=16)
        for i in range(100):
            table.insert("and", ("and", i), i)
        assert len(table) <= 16
        assert table.totals().evictions > 0

    def test_hit_miss_counting(self):
        table = ComputedTable()
        assert table.lookup("ite", ("ite", 1)) is None
        table.insert("ite", ("ite", 1), "r")
        assert table.lookup("ite", ("ite", 1)) == "r"
        s = table.stats()["ite"]
        assert (s.hits, s.misses) == (1, 1)
        assert s.hit_rate == 0.5

    def test_eviction_attributed_to_evicted_op(self):
        table = ComputedTable(limit=1)
        table.insert("and", ("and", 1), 1)
        table.insert("or", ("or", 1), 1)
        # The "and" entry was pushed out by the "or" insert.
        assert table.stats()["and"].evictions == 1
        assert table.stats().get("or", None) is None \
            or table.stats()["or"].evictions == 0

    def test_set_limit_validation(self):
        table = ComputedTable()
        with pytest.raises(ValueError):
            table.set_limit(0)
        with pytest.raises(ValueError):
            table.set_limit(-5)

    def test_set_limit_rehashes_existing(self):
        table = ComputedTable()
        for i in range(10):
            table.insert("and", ("and", i), i)
        table.set_limit(64)
        hits = sum(table.lookup("and", ("and", i)) == i
                   for i in range(10))
        assert hits == 10

    def test_reset_stats_keeps_entries(self):
        table = ComputedTable()
        table.insert("and", ("and", 1), 1)
        table.lookup("and", ("and", 1))
        table.reset_stats()
        assert table.totals().lookups == 0
        assert table.lookup("and", ("and", 1)) == 1


class TestBoundedCacheCanonicity:
    def test_eviction_preserves_canonicity(self):
        """Recomputing an evicted result yields the identical node."""
        m = Manager([f"x{i}" for i in range(10)], cache_limit=8)
        xs = [m.var(f"x{i}") for i in range(10)]
        products = [xs[i] & xs[i + 1] for i in range(9)]
        first = [(p.node, p) for p in products]
        # Thrash the tiny cache so earlier entries are evicted ...
        for i in range(9):
            _ = products[i] | xs[(i + 3) % 10]
        assert m.computed.totals().evictions > 0
        # ... then recompute: hash-consing must return the same nodes.
        again = [xs[i] & xs[i + 1] for i in range(9)]
        for (node, p), q in zip(first, again):
            assert q.node == node
            assert q == p

    def test_results_independent_of_cache_limit(self):
        def build(**kw):
            m = Manager([f"x{i}" for i in range(8)], **kw)
            xs = [m.var(f"x{i}") for i in range(8)]
            f = m.false
            for i in range(8):
                f = f | (xs[i] & ~xs[(i + 1) % 8])
            g = f.exists([f"x{j}" for j in range(0, 8, 2)])
            return f.sat_count(), g.sat_count(), len(f), len(g)

        assert build() == build(cache_limit=16)


class TestAutomaticGC:
    def test_gc_fires_at_safe_points(self):
        m = Manager([f"x{i}" for i in range(12)], gc_threshold=20)
        xs = [m.var(f"x{i}") for i in range(12)]
        f = m.false
        for i in range(12):
            f = f | (xs[i] & xs[(i + 1) % 12] & ~xs[(i + 5) % 12])
            del f  # drop the old root each round to create dead nodes
            f = m.false | xs[i]
        assert m.stats.gc_count > 0
        assert m.stats.gc_reclaimed > 0

    def test_gc_threshold_validation(self):
        m = Manager(["a"])
        with pytest.raises(ValueError):
            m.gc_threshold = 0
        with pytest.raises(ValueError):
            m.gc_threshold = -1
        m.gc_threshold = 5
        assert m.gc_threshold == 5
        m.gc_threshold = None
        assert m.gc_threshold is None

    def test_defer_gc_suppresses_collection(self):
        m = Manager([f"x{i}" for i in range(8)], gc_threshold=1)
        xs = [m.var(f"x{i}") for i in range(8)]
        with m.defer_gc():
            before = m.stats.gc_count
            f = xs[0] & xs[1]
            g = f | xs[2]
            assert m.stats.gc_count == before
        assert (f & g) == f  # results still valid after the block

    def test_gc_never_fires_mid_recursion(self, monkeypatch):
        """Stress reachability with an aggressive threshold and assert
        every collection happens outside any kernel traversal frame
        (the iterative kernels hold raw nodes on their explicit stacks).
        """
        recursion_frames = {
            "apply_node", "not_node", "ite_node", "leq_node",
            "cofactor_node", "vector_compose_node", "exists_node",
            "forall_node", "_quantify", "and_exists_node",
            "constrain_node", "restrict_node", "build_result",
        }
        offenders: list[str] = []
        original = Manager.collect_garbage

        def checked(self):
            frame = sys._getframe(1)
            while frame is not None:
                if frame.f_code.co_name in recursion_frames:
                    offenders.append(frame.f_code.co_name)
                frame = frame.f_back
            return original(self)

        monkeypatch.setattr(Manager, "collect_garbage", checked)
        encoded = encode(token_ring(4))
        encoded.manager.gc_threshold = 8  # absurdly aggressive
        tr = TransitionRelation(encoded)
        from repro.core.approx import UNDER_APPROXIMATORS
        result = high_density_reachability(
            tr, encoded.initial_states(), UNDER_APPROXIMATORS["rua"],
            threshold=50)
        assert encoded.manager.stats.gc_count > 0
        assert offenders == []
        assert result.complete

    def test_gc_stats_populated(self):
        m = Manager(["a", "b", "c"])
        a, b = m.var("a"), m.var("b")
        f = a & b
        del f
        reclaimed = m.collect_garbage()
        s = m.stats
        assert s.gc_count == 1
        assert s.gc_reclaimed == reclaimed
        assert s.gc_pause_total >= 0
        assert s.gc_pause_max <= s.gc_pause_total


class TestManagerStats:
    def test_counters_reconcile(self):
        m = Manager(["a", "b", "c"])
        a, b = m.var("a"), m.var("b")
        _ = a & b
        _ = a & b  # safe_point may clear nothing; cache entry survives
        per_op = m.stats.cache_per_op
        assert per_op["and"].misses >= 1
        assert per_op["and"].hits >= 1
        totals = m.stats
        assert totals.cache_hits == sum(s.hits
                                        for s in per_op.values())
        assert totals.cache_misses == sum(s.misses
                                          for s in per_op.values())
        assert totals.cache_evictions == sum(s.evictions
                                             for s in per_op.values())

    def test_op_tags_cover_operations(self):
        m = Manager(["a", "b", "c", "d"])
        a, b, c = m.var("a"), m.var("b"), m.var("c")
        _ = a & b
        _ = a | b
        _ = a ^ b
        _ = a.ite(b, c)
        _ = (a & b).exists(["a"])
        _ = (a | b).forall(["b"])
        ops = set(m.stats.cache_per_op)
        assert {"and", "or", "xor", "ite", "exists", "forall"} <= ops

    def test_peak_nodes(self):
        m = Manager([f"x{i}" for i in range(6)])
        xs = [m.var(f"x{i}") for i in range(6)]
        f = xs[0]
        for x in xs[1:]:
            f = f ^ x
        assert m.stats.peak_nodes >= len(m)
        assert m.stats.peak_nodes >= m.stats.nodes

    def test_reset_stats(self):
        m = Manager(["a", "b"])
        a, b = m.var("a"), m.var("b")
        _ = a & b
        m.collect_garbage()
        m.reset_stats()
        s = m.stats
        assert s.cache_hits == s.cache_misses == 0
        assert s.gc_count == 0 and s.gc_reclaimed == 0
        assert s.gc_pause_total == 0.0
        assert s.peak_nodes == s.nodes  # peak re-anchored to now

    def test_stats_snapshot_is_frozen(self):
        m = Manager(["a"])
        with pytest.raises(AttributeError):
            m.stats.nodes = 0


class TestReachabilityByteIdentical:
    """Acceptance: cache bounding + auto-GC must not change results."""

    @pytest.mark.parametrize("circuit", [counter(4), token_ring(4)])
    def test_bfs_identical(self, circuit):
        def run(**kw):
            encoded = encode(circuit)
            manager = encoded.manager
            if "cache_limit" in kw:
                manager.set_cache_limit(kw["cache_limit"])
            if "gc_threshold" in kw:
                manager.gc_threshold = kw["gc_threshold"]
            tr = TransitionRelation(encoded)
            r = bfs_reachability(tr, encoded.initial_states())
            return (count_states(r.reached, encoded.state_vars),
                    len(r.reached), r.iterations, r.complete)

        assert run() == run(cache_limit=256, gc_threshold=64)

    def test_high_density_identical(self):
        from repro.core.approx import UNDER_APPROXIMATORS

        def run(**kw):
            encoded = encode(token_ring(4))
            manager = encoded.manager
            if "cache_limit" in kw:
                manager.set_cache_limit(kw["cache_limit"])
            if "gc_threshold" in kw:
                manager.gc_threshold = kw["gc_threshold"]
            tr = TransitionRelation(encoded)
            r = high_density_reachability(
                tr, encoded.initial_states(),
                UNDER_APPROXIMATORS["rua"], threshold=40)
            return (count_states(r.reached, encoded.state_vars),
                    len(r.reached), r.iterations, r.complete)

        assert run() == run(cache_limit=128, gc_threshold=32)

    @pytest.mark.parametrize("circuit", [counter(5), token_ring(5)])
    def test_eviction_mid_operation_identical(self, circuit):
        """A cache bound tiny enough to evict *during* the image-step
        kernels (the iterative explicit-stack traversals re-derive the
        lost sub-results through the unique table) must still produce
        byte-identical fixpoints vs an unbounded cache.
        """
        def run(cache_limit=None):
            encoded = encode(circuit)
            manager = encoded.manager
            if cache_limit is not None:
                manager.set_cache_limit(cache_limit)
            tr = TransitionRelation(encoded)
            r = bfs_reachability(tr, encoded.initial_states())
            evictions = manager.computed.totals().evictions
            return (count_states(r.reached, encoded.state_vars),
                    len(r.reached), r.iterations, r.complete), evictions

        unbounded, no_evictions = run()
        bounded, evictions = run(cache_limit=32)
        assert no_evictions == 0
        # The bound must be small enough that entries are lost while a
        # fixpoint (and the kernels inside it) is still in flight.
        assert evictions > 0
        assert bounded == unbounded


class TestMetricCaches:
    """Per-manager metric caches for bdd_size / support_levels."""

    def _build(self):
        from tests.helpers import fresh_manager
        manager, (a, b, c, d) = fresh_manager(4)
        f = (a & b) | (c & ~d)
        return manager, f

    def test_len_and_support_populate_the_cache(self):
        manager, f = self._build()
        assert f.node not in manager._size_cache
        size = len(f)
        assert manager._size_cache[f.node] == size
        support = f.support()
        assert support == {"x0", "x1", "x2", "x3"}
        assert f.node in manager._support_cache
        # Cached answers stay consistent with a fresh walk.
        from repro.bdd import bdd_size
        assert len(f) == bdd_size(manager.store, f.node)
        assert f.support() == support

    def test_gc_invalidates(self):
        manager, f = self._build()
        len(f), f.support()
        manager.collect_garbage()
        assert f.node not in manager._size_cache
        assert f.node not in manager._support_cache
        # and repopulating still gives the right answer
        from repro.bdd import bdd_size
        assert len(f) == bdd_size(manager.store, f.node)

    def test_reorder_invalidates_and_stays_correct(self):
        from repro.bdd import bdd_size
        from repro.bdd.reorder import sift

        manager, f = self._build()
        before_support = f.support()
        len(f)
        sift(manager)
        # swap_adjacent rewrites nodes in place: the caches were
        # flushed, so fresh walks and cached walks must agree.
        assert len(f) == bdd_size(manager.store, f.node)
        assert f.support() == before_support

    def test_dead_nodes_do_not_pin_the_cache(self):
        import gc

        manager, f = self._build()
        node = f.node
        len(f)
        assert node in manager._size_cache
        del f
        del node
        gc.collect()
        # GC flushes the metric caches wholesale, so dead handles
        # never pin entries (and recycled ids can never alias them).
        manager.collect_garbage()
        assert len(manager._size_cache) == 0
