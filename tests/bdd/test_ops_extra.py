"""N-ary combiners, variable swapping, essential variables."""

from __future__ import annotations

import pytest

from repro.bdd import (Manager, conjoin_all, disjoin_all,
                       essential_variables, swap_variables)

from ..helpers import fresh_manager


class TestNary:
    def test_conjoin_matches_fold(self, random_functions):
        m, funcs = random_functions
        expected = m.true
        for f in funcs:
            expected = expected & f
        assert conjoin_all(m, funcs) == expected

    def test_disjoin_matches_fold(self, random_functions):
        m, funcs = random_functions
        expected = m.false
        for f in funcs:
            expected = expected | f
        assert disjoin_all(m, funcs) == expected

    def test_empty(self):
        m = Manager()
        assert conjoin_all(m, []).is_true
        assert disjoin_all(m, []).is_false

    def test_cross_manager_rejected(self):
        m1, vs1 = fresh_manager(2)
        m2, vs2 = fresh_manager(2)
        with pytest.raises(ValueError):
            conjoin_all(m1, [vs1[0], vs2[0]])

    def test_manager_methods(self, random_functions):
        m, funcs = random_functions
        assert m.conjoin(funcs) == conjoin_all(m, funcs)
        assert m.disjoin(funcs) == disjoin_all(m, funcs)
        assert m.conjoin([]).is_true
        assert m.disjoin([]).is_false

    def test_module_functions_are_aliases(self, random_functions):
        m, funcs = random_functions
        # conjoin_all/disjoin_all stay importable but defer to Manager.
        assert conjoin_all(m, funcs[:3]) == m.conjoin(funcs[:3])

    def test_manager_method_rejects_foreign(self):
        m1, vs1 = fresh_manager(2)
        m2, vs2 = fresh_manager(2)
        with pytest.raises(ValueError):
            m1.conjoin([vs1[0], vs2[0]])


class TestSwapVariables:
    def test_swap_is_involution(self, random_functions):
        m, funcs = random_functions
        pairs = {"x0": "x5", "x2": "x7"}
        for f in funcs[:4]:
            assert swap_variables(swap_variables(f, pairs), pairs) == f

    def test_swap_semantics(self):
        m, vs = fresh_manager(4)
        f = vs[0] & ~vs[1]
        g = swap_variables(f, {"x0": "x1"})
        assert g == (vs[1] & ~vs[0])

    def test_present_next_swap(self):
        m = Manager(vars=["q", "q'"])
        q, qn = m.var("q"), m.var("q'")
        f = q & ~qn
        assert swap_variables(f, {"q": "q'"}) == (qn & ~q)


class TestEssentialVariables:
    def test_cube(self):
        m, vs = fresh_manager(4)
        cube = vs[0] & ~vs[2]
        assert essential_variables(cube) == {"x0": True, "x2": False}

    def test_disjunction_has_none(self):
        m, vs = fresh_manager(2)
        assert essential_variables(vs[0] | vs[1]) == {}

    def test_mixed(self):
        m, vs = fresh_manager(3)
        f = vs[0] & (vs[1] | vs[2])
        assert essential_variables(f) == {"x0": True}

    def test_false(self):
        m = Manager(vars=["a"])
        assert essential_variables(m.false) == {}
