"""N-ary combiners, variable swapping, essential variables."""

from __future__ import annotations

import warnings

import pytest

from repro.bdd import (Manager, conjoin_all, disjoin_all,
                       essential_variables, swap_variables)
from repro.bdd import ops_extra

from ..helpers import fresh_manager


class TestNary:
    def test_conjoin_matches_fold(self, random_functions):
        m, funcs = random_functions
        expected = m.true
        for f in funcs:
            expected = expected & f
        assert conjoin_all(m, funcs) == expected

    def test_disjoin_matches_fold(self, random_functions):
        m, funcs = random_functions
        expected = m.false
        for f in funcs:
            expected = expected | f
        assert disjoin_all(m, funcs) == expected

    def test_empty(self):
        m = Manager()
        assert conjoin_all(m, []).is_true
        assert disjoin_all(m, []).is_false

    def test_cross_manager_rejected(self):
        m1, vs1 = fresh_manager(2)
        m2, vs2 = fresh_manager(2)
        with pytest.raises(ValueError):
            conjoin_all(m1, [vs1[0], vs2[0]])

    def test_manager_methods(self, random_functions):
        m, funcs = random_functions
        assert m.conjoin(funcs) == conjoin_all(m, funcs)
        assert m.disjoin(funcs) == disjoin_all(m, funcs)
        assert m.conjoin([]).is_true
        assert m.disjoin([]).is_false

    def test_module_functions_are_aliases(self, random_functions):
        m, funcs = random_functions
        # conjoin_all/disjoin_all stay importable but defer to Manager.
        assert conjoin_all(m, funcs[:3]) == m.conjoin(funcs[:3])

    def test_manager_method_rejects_foreign(self):
        m1, vs1 = fresh_manager(2)
        m2, vs2 = fresh_manager(2)
        with pytest.raises(ValueError):
            m1.conjoin([vs1[0], vs2[0]])


class TestSwapVariables:
    def test_swap_is_involution(self, random_functions):
        m, funcs = random_functions
        pairs = {"x0": "x5", "x2": "x7"}
        for f in funcs[:4]:
            assert swap_variables(swap_variables(f, pairs), pairs) == f

    def test_swap_semantics(self):
        m, vs = fresh_manager(4)
        f = vs[0] & ~vs[1]
        g = swap_variables(f, {"x0": "x1"})
        assert g == (vs[1] & ~vs[0])

    def test_present_next_swap(self):
        m = Manager(vars=["q", "q'"])
        q, qn = m.var("q"), m.var("q'")
        f = q & ~qn
        assert swap_variables(f, {"q": "q'"}) == (qn & ~q)


class TestEssentialVariables:
    def test_cube(self):
        m, vs = fresh_manager(4)
        cube = vs[0] & ~vs[2]
        assert essential_variables(cube) == {"x0": True, "x2": False}

    def test_disjunction_has_none(self):
        m, vs = fresh_manager(2)
        assert essential_variables(vs[0] | vs[1]) == {}

    def test_mixed(self):
        m, vs = fresh_manager(3)
        f = vs[0] & (vs[1] | vs[2])
        assert essential_variables(f) == {"x0": True}

    def test_false(self):
        m = Manager(vars=["a"])
        assert essential_variables(m.false) == {}


class TestDeprecationShims:
    """The ops_extra module-level functions are deprecated aliases:
    each must emit a DeprecationWarning naming its replacement AND
    return exactly what the replacement returns."""

    def test_conjoin_all_warns_and_matches(self, random_functions):
        m, funcs = random_functions
        with pytest.warns(DeprecationWarning,
                          match=r"conjoin_all is deprecated.*"
                                r"Manager\.conjoin"):
            via_shim = ops_extra.conjoin_all(m, funcs)
        assert via_shim == m.conjoin(funcs)

    def test_disjoin_all_warns_and_matches(self, random_functions):
        m, funcs = random_functions
        with pytest.warns(DeprecationWarning,
                          match=r"disjoin_all is deprecated.*"
                                r"Manager\.disjoin"):
            via_shim = ops_extra.disjoin_all(m, funcs)
        assert via_shim == m.disjoin(funcs)

    def test_swap_variables_warns_and_matches(self, random_functions):
        m, funcs = random_functions
        pairs = {"x1": "x6", "x3": "x9"}
        for f in funcs[:3]:
            with pytest.warns(DeprecationWarning,
                              match=r"swap_variables is deprecated.*"
                                    r"Function\.swap_variables"):
                via_shim = ops_extra.swap_variables(f, pairs)
            assert via_shim == f.swap_variables(pairs)

    def test_essential_variables_warns_and_matches(self):
        m, vs = fresh_manager(4)
        f = vs[0] & ~vs[3] & (vs[1] | vs[2])
        with pytest.warns(
                DeprecationWarning,
                match=r"essential_variables is deprecated.*"
                      r"Function\.essential_variables"):
            via_shim = ops_extra.essential_variables(f)
        assert via_shim == f.essential_variables()
        assert via_shim == {"x0": True, "x3": False}

    def test_warning_points_at_caller(self):
        """stacklevel is set so the warning blames this file, not the
        shim module — that is what makes the deprecation actionable."""
        m, vs = fresh_manager(2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ops_extra.essential_variables(vs[0])
        assert len(caught) == 1
        assert caught[0].filename == __file__

    def test_new_apis_do_not_warn(self, random_functions):
        m, funcs = random_functions
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            m.conjoin(funcs[:3])
            m.disjoin(funcs[:3])
            funcs[0].swap_variables({"x0": "x1"})
            funcs[0].essential_variables()
