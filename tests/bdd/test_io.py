"""Serialization and cross-manager transfer."""

from __future__ import annotations

import pytest

from repro.bdd import (Manager, dump, dumps_many, load, loads_many,
                       transfer)

from ..helpers import fresh_manager


class TestDumpLoad:
    def test_roundtrip_same_manager(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert load(m, dump(f)) == f

    def test_roundtrip_fresh_manager(self, random_functions):
        m, funcs = random_functions
        for f in funcs[:4]:
            target = Manager()
            g = load(target, dump(f))
            assert g.sat_count(m.num_vars) == f.sat_count()
            assert g.support() == f.support()

    def test_roundtrip_different_order(self, random_functions):
        m, funcs = random_functions
        f = funcs[0]
        target = Manager(vars=[f"x{i}" for i in range(12)][::-1])
        g = load(target, dump(f))
        assert g.sat_count() == f.sat_count()

    def test_constants(self):
        m = Manager(vars=["a"])
        assert load(m, dump(m.true)).is_true
        assert load(m, dump(m.false)).is_false

    def test_rejects_garbage(self):
        m = Manager()
        with pytest.raises(ValueError):
            load(m, "not a dump")
        with pytest.raises(ValueError):
            load(m, "repro-bdd 1\n")  # missing root

    def test_declare_false(self):
        m, vs = fresh_manager(3)
        text = dump(vs[0] & vs[2])
        target = Manager()
        with pytest.raises(ValueError):
            load(target, text, declare=False)


class TestMany:
    def test_roundtrip_many(self, random_functions):
        m, funcs = random_functions
        text = dumps_many(funcs[:5])
        target = Manager()
        loaded = loads_many(target, text)
        assert len(loaded) == 5
        for original, copy in zip(funcs, loaded):
            assert copy.sat_count(m.num_vars) == original.sat_count()

    def test_count_mismatch(self):
        m = Manager()
        with pytest.raises(ValueError):
            loads_many(m, "count 2\n" + dump(m.true) + "---\n")


class TestTransfer:
    def test_transfer_preserves_semantics(self, random_functions):
        m, funcs = random_functions
        target = Manager()
        for f in funcs[:4]:
            g = transfer(f, target)
            assert g.manager is target
            assert g.sat_count(m.num_vars) == f.sat_count()

    def test_transfer_same_manager_is_identity(self, random_functions):
        m, funcs = random_functions
        assert transfer(funcs[0], m) == funcs[0]

    def test_transfer_into_reversed_order(self, random_functions):
        m, funcs = random_functions
        target = Manager(vars=[f"x{i}" for i in range(12)][::-1])
        for f in funcs[:4]:
            g = transfer(f, target)
            assert g.sat_count() == f.sat_count()
            assert g.support() == f.support()

    def test_transfer_shares_subgraphs(self, random_functions):
        m, funcs = random_functions
        target = Manager()
        a = transfer(funcs[0], target)
        b = transfer(funcs[0], target)
        assert a == b
