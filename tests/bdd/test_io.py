"""Serialization and cross-manager transfer."""

from __future__ import annotations

import pytest

from repro.bdd import (LoadError, Manager, dump, dumps_many, load,
                       loads_many, transfer)

from ..helpers import fresh_manager


class TestDumpLoad:
    def test_roundtrip_same_manager(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert load(m, dump(f)) == f

    def test_roundtrip_fresh_manager(self, random_functions):
        m, funcs = random_functions
        for f in funcs[:4]:
            target = Manager()
            g = load(target, dump(f))
            assert g.sat_count(m.num_vars) == f.sat_count()
            assert g.support() == f.support()

    def test_roundtrip_different_order(self, random_functions):
        m, funcs = random_functions
        f = funcs[0]
        target = Manager(vars=[f"x{i}" for i in range(12)][::-1])
        g = load(target, dump(f))
        assert g.sat_count() == f.sat_count()

    def test_constants(self):
        m = Manager(vars=["a"])
        assert load(m, dump(m.true)).is_true
        assert load(m, dump(m.false)).is_false

    def test_rejects_garbage(self):
        m = Manager()
        with pytest.raises(ValueError):
            load(m, "not a dump")
        with pytest.raises(ValueError):
            load(m, "repro-bdd 1\n")  # missing root

    def test_declare_false(self):
        m, vs = fresh_manager(3)
        text = dump(vs[0] & vs[2])
        target = Manager()
        with pytest.raises(ValueError):
            load(target, text, declare=False)


class TestMany:
    def test_roundtrip_many(self, random_functions):
        m, funcs = random_functions
        text = dumps_many(funcs[:5])
        target = Manager()
        loaded = loads_many(target, text)
        assert len(loaded) == 5
        for original, copy in zip(funcs, loaded):
            assert copy.sat_count(m.num_vars) == original.sat_count()

    def test_count_mismatch(self):
        m = Manager()
        with pytest.raises(ValueError):
            loads_many(m, "count 2\n" + dump(m.true) + "---\n")


class TestTransfer:
    def test_transfer_preserves_semantics(self, random_functions):
        m, funcs = random_functions
        target = Manager()
        for f in funcs[:4]:
            g = transfer(f, target)
            assert g.manager is target
            assert g.sat_count(m.num_vars) == f.sat_count()

    def test_transfer_same_manager_is_identity(self, random_functions):
        m, funcs = random_functions
        assert transfer(funcs[0], m) == funcs[0]

    def test_transfer_into_reversed_order(self, random_functions):
        m, funcs = random_functions
        target = Manager(vars=[f"x{i}" for i in range(12)][::-1])
        for f in funcs[:4]:
            g = transfer(f, target)
            assert g.sat_count() == f.sat_count()
            assert g.support() == f.support()

    def test_transfer_shares_subgraphs(self, random_functions):
        m, funcs = random_functions
        target = Manager()
        a = transfer(funcs[0], target)
        b = transfer(funcs[0], target)
        assert a == b


class TestCorruptionCorpus:
    """Malformed dumps raise structured LoadError on both backends.

    The direct-insert fast path feeds ``store.mk`` straight from the
    input, so every case here guards against a corrupt dump becoming a
    silently non-canonical (wrong) BDD instead of an error.
    """

    CORPUS = [
        ("bad-header", "repro-bdd 99\nroot 1\n"),
        ("no-header", "2 a 1 0\nroot 2\n"),
        ("missing-root", "repro-bdd 1\n2 a 1 0\n"),
        ("undefined-root", "repro-bdd 1\n2 a 1 0\nroot 9\n"),
        ("malformed-root", "repro-bdd 1\nroot 2 extra\n"),
        ("non-integer-root", "repro-bdd 1\nroot x\n"),
        ("short-node-line", "repro-bdd 1\n2 a 1\nroot 2\n"),
        ("long-node-line", "repro-bdd 1\n2 a 1 0 9\nroot 2\n"),
        ("non-integer-index", "repro-bdd 1\nx a 1 0\nroot 2\n"),
        ("non-integer-child", "repro-bdd 1\n2 a one 0\nroot 2\n"),
        ("reserved-index-0", "repro-bdd 1\n0 a 1 0\nroot 0\n"),
        ("reserved-index-1", "repro-bdd 1\n1 a 1 0\nroot 1\n"),
        ("negative-index", "repro-bdd 1\n-3 a 1 0\nroot 2\n"),
        ("duplicate-index",
         "repro-bdd 1\n2 a 1 0\n2 b 0 1\nroot 2\n"),
        ("undefined-hi", "repro-bdd 1\n2 a 7 0\nroot 2\n"),
        ("undefined-lo", "repro-bdd 1\n2 a 1 7\nroot 2\n"),
        ("forward-reference",
         "repro-bdd 1\n2 a 3 0\n3 b 1 0\nroot 2\n"),
        ("redundant-node", "repro-bdd 1\n2 a 1 1\nroot 2\n"),
    ]

    @pytest.mark.parametrize("backend", ["object", "array"])
    @pytest.mark.parametrize(
        "text", [text for _, text in CORPUS],
        ids=[label for label, _ in CORPUS])
    def test_corrupt_dump_is_structured_error(self, backend, text):
        manager = Manager(backend=backend)
        with pytest.raises(LoadError) as excinfo:
            load(manager, text)
        # LoadError subclasses ValueError: legacy callers that catch
        # ValueError keep working.
        assert isinstance(excinfo.value, ValueError)

    @pytest.mark.parametrize("backend", ["object", "array"])
    def test_undeclared_variable_with_declare_false(self, backend):
        manager = Manager(backend=backend)
        with pytest.raises(LoadError, match="unknown variable"):
            load(manager, "repro-bdd 1\n2 ghost 1 0\nroot 2\n",
                 declare=False)

    @pytest.mark.parametrize("backend", ["object", "array"])
    def test_corpus_cases_reject_cleanly_then_load_works(self,
                                                         backend):
        """A rejected dump must not poison the manager: the same
        manager loads a well-formed dump afterwards."""
        manager = Manager(backend=backend)
        for _, text in self.CORPUS:
            with pytest.raises(LoadError):
                load(manager, text)
        f = load(manager, "repro-bdd 1\n2 a 1 0\nroot 2\n")
        assert f.sat_count() == 1
