"""ITE, apply, compose, cofactor — semantics against brute force."""

from __future__ import annotations

import pytest

from repro.bdd.operations import apply_node, leq_node

from ..helpers import assert_equal_semantics, fresh_manager, truth_table


class TestApply:
    @pytest.mark.parametrize("op,oracle", [
        ("and", lambda a, b: a and b),
        ("or", lambda a, b: a or b),
        ("xor", lambda a, b: a != b),
        ("xnor", lambda a, b: a == b),
        ("nand", lambda a, b: not (a and b)),
        ("nor", lambda a, b: not (a or b)),
        ("imp", lambda a, b: (not a) or b),
        ("diff", lambda a, b: a and not b),
    ])
    def test_operator_semantics(self, op, oracle):
        m, vs = fresh_manager(4)
        f = vs[0] & vs[2]
        g = vs[1] | ~vs[3]
        result = m.apply(op, f, g)
        names = [f"x{i}" for i in range(4)]
        assert_equal_semantics(
            result,
            lambda **a: oracle(a["x0"] and a["x2"],
                               a["x1"] or not a["x3"]),
            names)

    def test_unknown_operator(self):
        m, vs = fresh_manager(2)
        with pytest.raises(ValueError):
            apply_node(m, "nope", vs[0].node, vs[1].node)

    def test_terminal_cases(self):
        m, vs = fresh_manager(1)
        a = vs[0]
        assert (a & m.false).is_false
        assert (a & m.true) == a
        assert (a | m.true).is_true
        assert (a | m.false) == a
        assert (a ^ a).is_false
        assert (a ^ m.false) == a

    def test_commutative_cache_symmetry(self):
        m, vs = fresh_manager(3)
        f = vs[0] | vs[1]
        g = vs[1] & vs[2]
        assert (f & g) == (g & f)
        assert (f ^ g) == (g ^ f)


class TestIte:
    def test_basic(self):
        m, vs = fresh_manager(3)
        f = m.ite(vs[0], vs[1], vs[2])
        names = ["x0", "x1", "x2"]
        assert_equal_semantics(
            f, lambda **a: a["x1"] if a["x0"] else a["x2"], names)

    def test_terminal_shortcuts(self):
        m, vs = fresh_manager(2)
        a, b = vs
        assert m.ite(m.true, a, b) == a
        assert m.ite(m.false, a, b) == b
        assert m.ite(a, b, b) == b
        assert m.ite(a, m.true, m.false) == a
        assert m.ite(a, m.false, m.true) == ~a

    def test_ite_equals_boolean_formula(self):
        m, vs = fresh_manager(4)
        f = vs[0] ^ vs[3]
        g = vs[1] & vs[2]
        h = vs[2] | vs[0]
        assert m.ite(f, g, h) == ((f & g) | (~f & h))

    def test_fgh_collapsing(self):
        m, vs = fresh_manager(2)
        a, b = vs
        assert m.ite(a, a, b) == (a | b)
        assert m.ite(a, b, a) == (a & b)


class TestNot:
    def test_involution(self):
        m, vs = fresh_manager(5)
        f = (vs[0] & vs[1]) | (vs[2] ^ vs[4])
        assert ~~f == f

    def test_de_morgan(self):
        m, vs = fresh_manager(4)
        f = vs[0] | vs[1]
        g = vs[2] & vs[3]
        assert ~(f & g) == (~f | ~g)
        assert ~(f | g) == (~f & ~g)


class TestLeq:
    def test_reflexive_and_constants(self):
        m, vs = fresh_manager(3)
        f = vs[0] & vs[1]
        assert leq_node(m, f.node, f.node)
        assert leq_node(m, m.zero_node, f.node)
        assert leq_node(m, f.node, m.one_node)
        assert not leq_node(m, m.one_node, f.node)

    def test_strict_containment(self):
        m, vs = fresh_manager(3)
        small = vs[0] & vs[1]
        big = vs[0]
        assert small <= big
        assert not big <= small
        assert small < big
        assert big > small

    def test_incomparable(self):
        m, vs = fresh_manager(2)
        assert not vs[0] <= vs[1]
        assert not vs[1] <= vs[0]

    def test_shared_cache(self):
        m, vs = fresh_manager(4)
        f = vs[0] & vs[1]
        g = vs[0]
        cache = {}
        assert leq_node(m, f.node, g.node, cache)
        assert cache  # populated
        assert leq_node(m, f.node, g.node, cache)


class TestCofactor:
    def test_shannon_expansion(self, random_functions):
        m, funcs = random_functions
        x0 = m.var("x0")
        for f in funcs:
            hi = f.cofactor({"x0": True})
            lo = f.cofactor({"x0": False})
            assert f == m.ite(x0, hi, lo)

    def test_multi_variable(self):
        m, vs = fresh_manager(4)
        f = (vs[0] & vs[1]) | (vs[2] & vs[3])
        g = f.cofactor({"x0": True, "x2": False})
        assert g == vs[1]

    def test_top_cofactors_match_structure(self):
        m, vs = fresh_manager(3)
        f = m.ite(vs[0], vs[1], vs[2])
        assert f.hi == vs[1]
        assert f.lo == vs[2]


class TestCompose:
    def test_substitute_matches_semantics(self):
        m, vs = fresh_manager(5)
        f = (vs[0] & vs[1]) ^ vs[2]
        g = vs[3] | vs[4]
        composed = f.compose({"x1": g})
        names = [f"x{i}" for i in range(5)]
        assert_equal_semantics(
            composed,
            lambda **a: (a["x0"] and (a["x3"] or a["x4"])) != a["x2"],
            names)

    def test_substitute_overlapping_support(self):
        # Replacement mentions variables above the replaced one.
        m, vs = fresh_manager(3)
        f = vs[1] & vs[2]
        composed = f.compose({"x1": vs[0]})
        assert composed == (vs[0] & vs[2])

    def test_simultaneous_swap(self):
        m, vs = fresh_manager(2)
        f = vs[0] & ~vs[1]
        swapped = f.compose({"x0": vs[1], "x1": vs[0]})
        assert swapped == (vs[1] & ~vs[0])

    def test_rename(self):
        m, vs = fresh_manager(4)
        f = vs[0] | vs[1]
        renamed = f.rename({"x0": "x2", "x1": "x3"})
        assert renamed == (vs[2] | vs[3])

    def test_empty_substitution(self):
        m, vs = fresh_manager(2)
        f = vs[0] ^ vs[1]
        assert f.compose({}) == f


class TestEvaluation:
    def test_call(self):
        m, vs = fresh_manager(3)
        f = (vs[0] & vs[1]) | vs[2]
        assert f(x0=True, x1=True, x2=False)
        assert not f(x0=True, x1=False, x2=False)

    def test_missing_variable_raises(self):
        m, vs = fresh_manager(2)
        f = vs[0] & vs[1]
        with pytest.raises(ValueError):
            f(x0=True)

    def test_truth_table_helper(self):
        m, vs = fresh_manager(2)
        f = vs[0] ^ vs[1]
        assert truth_table(f, ["x0", "x1"]) == [False, True, True, False]
