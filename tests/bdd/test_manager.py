"""Manager: variables, node construction, canonicity, GC."""

from __future__ import annotations

import pytest

from repro.bdd import Manager, TERMINAL_LEVEL

from ..helpers import fresh_manager, random_function


class TestVariables:
    def test_add_var_returns_projection(self):
        m = Manager()
        a = m.add_var("a")
        assert a.var == "a"
        assert a.hi.is_true and a.lo.is_false

    def test_add_vars_order(self):
        m = Manager()
        m.add_vars("a", "b", "c")
        assert m.var_names == ["a", "b", "c"]
        assert m.level_of_var("b") == 1
        assert m.var_at_level(2) == "c"

    def test_duplicate_variable_rejected(self):
        m = Manager()
        m.add_var("a")
        with pytest.raises(ValueError):
            m.add_var("a")

    def test_var_lookup(self):
        m = Manager(vars=["p", "q"])
        assert m.var("p") == m.var("p")
        assert m.var("p") != m.var("q")

    def test_unknown_variable(self):
        m = Manager()
        with pytest.raises(KeyError):
            m.var("nope")

    def test_insert_above_nodes_rejected(self):
        m = Manager()
        m.add_var("a")
        with pytest.raises(ValueError):
            m.add_var("b", level=0)


class TestTerminals:
    def test_constants(self):
        m = Manager()
        assert m.true.is_true
        assert m.false.is_false
        assert m.true != m.false
        assert m.store.level_of(m.true.node) == TERMINAL_LEVEL

    def test_constants_are_canonical(self):
        m = Manager()
        assert m.true is not m.false
        assert (m.true & m.true) == m.true


class TestMk:
    def test_reduction_rule(self):
        m = Manager()
        m.add_var("a")
        node = m.mk(0, m.one_node, m.one_node)
        assert node is m.one_node

    def test_hash_consing(self):
        m = Manager()
        m.add_var("a")
        n1 = m.mk(0, m.one_node, m.zero_node)
        n2 = m.mk(0, m.one_node, m.zero_node)
        assert n1 is n2

    def test_order_violation_rejected(self):
        m = Manager()
        m.add_vars("a", "b")
        inner = m.mk(0, m.one_node, m.zero_node)
        with pytest.raises(ValueError):
            m.mk(1, inner, m.zero_node)

    def test_canonicity_of_equal_functions(self):
        m, vs = fresh_manager(4)
        f1 = (vs[0] & vs[1]) | vs[2]
        f2 = ~(~(vs[0] & vs[1]) & ~vs[2])
        assert f1.node is f2.node


class TestCube:
    def test_cube_semantics(self):
        m, vs = fresh_manager(3)
        cube = m.cube({"x0": True, "x2": False})
        assert cube == (vs[0] & ~vs[2])

    def test_empty_cube_is_true(self):
        m = Manager()
        assert m.cube({}).is_true


class TestGarbageCollection:
    def test_collect_reclaims_dead_nodes(self, rng):
        m, vs = fresh_manager(10)
        keep = random_function(m, vs, rng)
        for _ in range(5):
            random_function(m, vs, rng)  # dropped immediately
        import gc
        gc.collect()
        before = len(m)
        reclaimed = m.collect_garbage()
        assert reclaimed >= 0
        assert len(m) == before - reclaimed
        m.check_invariants()
        # The kept function still works.
        assert keep.sat_count() == keep.sat_count()

    def test_live_functions_survive(self, rng):
        m, vs = fresh_manager(10)
        fs = [random_function(m, vs, rng, terms=4) for _ in range(4)]
        counts = [f.sat_count() for f in fs]
        import gc
        gc.collect()
        m.collect_garbage()
        assert counts == [f.sat_count() for f in fs]

    def test_gc_count_increments(self):
        m = Manager()
        n = m.gc_count
        m.collect_garbage()
        assert m.gc_count == n + 1


class TestInvariants:
    def test_check_invariants_on_fresh_manager(self):
        m, vs = fresh_manager(6)
        f = (vs[0] | vs[3]) & ~vs[5]
        assert f is not None
        m.check_invariants()

    def test_len_counts_nodes(self):
        m = Manager()
        assert len(m) == 0
        m.add_var("a")
        assert len(m) == 1

    def test_level_sizes(self):
        m, vs = fresh_manager(3)
        f = vs[0] & vs[1] & vs[2]
        assert f is not None
        sizes = m.level_sizes()
        assert len(sizes) == 3
        assert all(s >= 1 for s in sizes)
