"""Differential suite: ObjectStore and ArrayStore must agree.

Every public operation is run against *both* backends in the same
process on identical inputs; truth tables, node counts, minterm
enumerations and statistics must match exactly.  The second half
covers the ArrayStore-specific robustness surfaces — governor fault
injection and the sanitizer's understanding of flat column stores —
mirroring the object-backend coverage in test_governor.py and
test_sanitize.py.
"""

from __future__ import annotations

import random

import pytest

from repro.bdd import InjectedAbort, Manager, arraystore
from repro.bdd.arraystore import FREE_LEVEL, ArrayStore
from repro.bdd.backend import (BACKENDS, DEFAULT_BACKEND, ObjectStore,
                               create_store, resolve_backend)
from repro.bdd.io import dump, load, transfer
from repro.bdd.restrict import constrain, restrict

from ..helpers import random_function, truth_table

NVARS = 10
NAMES = [f"x{i}" for i in range(NVARS)]
SEED = 20260808


def manager_pair() -> tuple[Manager, Manager]:
    """One manager per backend, same variables, in the same process."""
    return (Manager(NAMES, backend="object"),
            Manager(NAMES, backend="array"))


def seeded_functions(manager: Manager, count: int = 4):
    """Deterministic random DNFs — same seed, same functions."""
    rng = random.Random(SEED)
    variables = [manager.var(name) for name in NAMES]
    return [random_function(manager, variables, rng,
                            terms=5 + i, width=3) for i in range(count)]


def assert_same_function(f, g) -> None:
    """Semantic and structural agreement across two managers."""
    assert truth_table(f, NAMES) == truth_table(g, NAMES)
    assert len(f) == len(g)
    assert f.sat_count() == g.sat_count()


class TestRegistry:
    def test_default_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend() == DEFAULT_BACKEND == "object"

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "array")
        assert resolve_backend() == "array"
        assert isinstance(create_store(), ArrayStore)

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "array")
        assert resolve_backend("object") == "object"
        assert isinstance(create_store("object"), ObjectStore)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="array.*object|object.*array"):
            create_store("linked-list")

    def test_registry_names_match_classes(self):
        create_store("array")  # force lazy registration
        for name, factory in BACKENDS.items():
            assert factory().name == name

    def test_manager_reports_backend(self):
        obj, arr = manager_pair()
        assert obj.backend == "object"
        assert arr.backend == "array"
        assert obj.stats.as_dict()["backend"] == "object"
        assert arr.stats.as_dict()["backend"] == "array"

    def test_array_terminal_handles(self):
        store = create_store("array")
        assert store.zero == 0 and store.one == 1
        assert store.is_terminal(0) and store.is_terminal(1)
        assert not store.is_terminal(2)
        assert store.value_of(0) == 0 and store.value_of(1) == 1


class TestDifferential:
    def test_random_functions_agree(self):
        obj, arr = manager_pair()
        for f, g in zip(seeded_functions(obj), seeded_functions(arr)):
            assert_same_function(f, g)
        assert len(obj) == len(arr)
        assert obj.level_sizes() == arr.level_sizes()

    def test_apply_ops_agree(self):
        obj, arr = manager_pair()
        (fo, go, *_), (fa, ga, *_) = seeded_functions(obj), \
            seeded_functions(arr)
        for op in ("__and__", "__or__", "__xor__", "__sub__"):
            assert_same_function(getattr(fo, op)(go), getattr(fa, op)(ga))
        assert_same_function(~fo, ~fa)
        assert_same_function(fo.ite(go, ~go), fa.ite(ga, ~ga))
        assert (fo <= go) == (fa <= ga)
        assert (fo == go) == (fa == ga)

    def test_quantify_agree(self):
        obj, arr = manager_pair()
        (fo, go, *_), (fa, ga, *_) = seeded_functions(obj), \
            seeded_functions(arr)
        names = NAMES[3:6]
        assert_same_function(fo.exists(names), fa.exists(names))
        assert_same_function(fo.forall(names), fa.forall(names))
        assert_same_function(fo.and_exists(go, names),
                             fa.and_exists(ga, names))

    def test_restrict_agree(self):
        obj, arr = manager_pair()
        (fo, go, *_), (fa, ga, *_) = seeded_functions(obj), \
            seeded_functions(arr)
        assert_same_function(constrain(fo, go), constrain(fa, ga))
        assert_same_function(restrict(fo, go), restrict(fa, ga))
        cube = {"x1": True, "x4": False}
        assert_same_function(fo.cofactor(cube), fa.cofactor(cube))

    def test_compose_agree(self):
        obj, arr = manager_pair()
        (fo, go, *_), (fa, ga, *_) = seeded_functions(obj), \
            seeded_functions(arr)
        assert_same_function(fo.compose({"x2": go}), fa.compose({"x2": ga}))

    def test_support_and_counting_agree(self):
        obj, arr = manager_pair()
        for f, g in zip(seeded_functions(obj), seeded_functions(arr)):
            assert f.support() == g.support()
            assert f.sat_count() == g.sat_count()
            assert len(f) == len(g)

    def test_iter_minterms_agree(self):
        obj, arr = manager_pair()
        for f, g in zip(seeded_functions(obj), seeded_functions(arr)):
            assert list(f.iter_minterms()) == list(g.iter_minterms())

    def test_pick_one_is_model(self):
        obj, arr = manager_pair()
        for f, g in zip(seeded_functions(obj), seeded_functions(arr)):
            model = g.pick_one()
            assert model is not None
            assert g(**model) and f(**model)

    def test_gc_agrees(self):
        obj, arr = manager_pair()
        for manager in (obj, arr):
            fs = seeded_functions(manager)
            keep = fs[0]
            del fs
            manager.collect_garbage()
            assert manager.debug_check() == []
            assert len(manager) == len(keep)
        assert len(obj) == len(arr)

    def test_reorder_agrees(self):
        obj, arr = manager_pair()
        order = list(reversed(NAMES))
        results = []
        for manager in (obj, arr):
            f = seeded_functions(manager)[1]
            manager.reorder(order)
            assert manager.var_names == order
            assert manager.debug_check() == []
            results.append(f)
        assert_same_function(*results)
        assert obj.level_sizes() == arr.level_sizes()

    def test_sift_agrees(self):
        obj, arr = manager_pair()
        results = []
        for manager in (obj, arr):
            f = seeded_functions(manager)[2]
            manager.reorder()  # sifting
            assert manager.debug_check() == []
            results.append(f)
        assert truth_table(results[0], NAMES) \
            == truth_table(results[1], NAMES)
        assert obj.var_names == arr.var_names
        assert len(obj) == len(arr)

    def test_dump_load_across_backends(self):
        obj, arr = manager_pair()
        f = seeded_functions(obj)[0]
        g = load(arr, dump(f))
        assert_same_function(f, g)

    def test_transfer_across_backends(self):
        obj, arr = manager_pair()
        f = seeded_functions(obj)[0]
        g = transfer(f, arr)
        assert_same_function(f, g)
        # And back again, including a constant (handle 0 on the array
        # side — the regression that motivates membership cache checks).
        assert_same_function(transfer(g, obj), f)
        false_back = transfer(arr.false, obj)
        assert false_back.is_false


class TestSweepPaths:
    """The vectorized and portable GC sweeps are interchangeable."""

    @staticmethod
    def _collected_manager():
        manager = Manager(NAMES, backend="array")
        kept = seeded_functions(manager)[:2]
        for extra in seeded_functions(manager, count=6)[2:]:
            del extra  # garbage for the sweep to find
        manager.collect_garbage()
        return manager, kept

    @pytest.mark.skipif(not arraystore.VECTOR_SWEEP,
                        reason="numpy unavailable: only the portable "
                               "sweep can run")
    def test_portable_sweep_matches_vectorized(self, monkeypatch):
        vec_manager, vec_kept = self._collected_manager()
        monkeypatch.setattr(arraystore, "_np", None)
        por_manager, por_kept = self._collected_manager()
        vec, por = vec_manager.store, por_manager.store
        assert vec.num_nodes == por.num_nodes
        assert list(vec._level) == list(por._level)
        assert list(vec._ref) == list(por._ref)
        # The paths free in different orders but must free the same
        # slots.
        assert sorted(vec._free) == sorted(por._free)
        for f, g in zip(vec_kept, por_kept):
            assert truth_table(f, NAMES) == truth_table(g, NAMES)
        assert vec_manager.debug_check() == []
        assert por_manager.debug_check() == []


class TestArrayGovernor:
    """Fault injection must unwind the flat store cleanly."""

    @pytest.fixture(autouse=True)
    def _no_env_injection(self, monkeypatch):
        monkeypatch.delenv("REPRO_INJECT_ABORT", raising=False)

    def workload(self):
        manager = Manager([f"x{i}" for i in range(14)], backend="array")
        rng = random.Random(SEED)
        variables = [manager.var(f"x{i}") for i in range(14)]
        f = random_function(manager, variables, rng, terms=18, width=4)
        g = random_function(manager, variables, rng, terms=18, width=4)
        return manager, f, g

    def test_injected_abort_unwinds_clean(self):
        manager, f, g = self.workload()
        manager.governor.inject_abort_after(1, "apply")
        with pytest.raises(InjectedAbort):
            f & g
        assert manager.debug_check() == []
        # The op must succeed — and be correct — on retry.
        manager.governor.clear_injection()
        expected = [a and b for a, b in
                    zip(truth_table(f, manager.var_names),
                        truth_table(g, manager.var_names))]
        assert truth_table(f & g, manager.var_names) == expected

    def test_env_injection_arms_array_manager(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_ABORT", "apply:1")
        manager = Manager([f"x{i}" for i in range(14)], backend="array")
        assert manager.governor.injection_pending
        rng = random.Random(SEED)
        variables = [manager.var(f"x{i}") for i in range(14)]
        with pytest.raises(InjectedAbort):
            random_function(manager, variables, rng, terms=18, width=4)
        assert manager.debug_check() == []


@pytest.mark.no_sanitize
class TestArraySanitizer:
    """debug_check must understand flat stores: seeded corruptions.

    The object-backend twins live in test_sanitize.py; corruption here
    goes through the ``array('q')`` columns and packed-int tables.
    """

    def build(self):
        manager = Manager([f"x{i}" for i in range(6)], backend="array")
        variables = [manager.var(f"x{i}") for i in range(6)]
        a, b, c, d = variables[:4]
        functions = [(a & b) | (c ^ d), a.ite(b | c, ~d)]
        return manager, manager.store, functions

    @staticmethod
    def checks_of(manager) -> set[str]:
        return {d.check
                for d in manager.debug_check(raise_on_error=False)}

    @staticmethod
    def internal_ids(store) -> list[int]:
        return sorted(store.iter_nodes())

    def test_clean_array_manager_passes(self):
        manager, _, _ = self.build()
        assert manager.debug_check() == []

    def test_swapped_children_detected(self):
        manager, store, _ = self.build()
        victim = max(self.internal_ids(store), key=store.level_of)
        store._hi[victim], store._lo[victim] = \
            store._lo[victim], store._hi[victim]
        assert "key-sync" in self.checks_of(manager)

    def test_redundant_node_detected(self):
        manager, store, _ = self.build()
        victim = next(n for n in self.internal_ids(store)
                      if not store.is_terminal(store.hi_of(n)))
        store._lo[victim] = store._hi[victim]
        assert "redundant" in self.checks_of(manager)

    def test_ordering_violation_detected(self):
        manager, store, _ = self.build()
        victim = next(n for n in self.internal_ids(store)
                      if not store.is_terminal(store.hi_of(n)))
        store._level[victim] = store.level_of(store.hi_of(victim)) + 1
        found = self.checks_of(manager)
        assert "order" in found
        assert "level-sync" in found

    def test_duplicate_triple_detected(self):
        manager, store, _ = self.build()
        victim = self.internal_ids(store)[0]
        level = store.level_of(victim)
        # Smuggle a clone of the victim's triple under a bogus key.
        clone = len(store._level)
        store._level.append(level)
        store._hi.append(store.hi_of(victim))
        store._lo.append(store.lo_of(victim))
        store._ref.append(0)
        store._tables[level][(1 << 50) | clone] = clone
        manager._num_nodes += 1
        found = self.checks_of(manager)
        assert "duplicate" in found
        assert "key-sync" in found

    def test_dangling_child_detected(self):
        manager, store, _ = self.build()
        victim = next(n for n in self.internal_ids(store)
                      if not store.is_terminal(store.lo_of(n)))
        # Point lo at an id with no slot in the columns at all.
        store._lo[victim] = len(store._level) + 7
        assert "dangling" in self.checks_of(manager)

    def test_freed_child_detected(self):
        manager, store, functions = self.build()
        # Free a slot by hand, then point a live node at it: the slot
        # carries FREE_LEVEL, which must read as a dead child.
        victim = next(n for n in self.internal_ids(store)
                      if not store.is_terminal(store.lo_of(n)))
        orphan = store.lo_of(victim)
        level = store.level_of(orphan)
        del store._tables[level][(store.hi_of(orphan) << 32)
                                 | store.lo_of(orphan)]
        store._level[orphan] = FREE_LEVEL
        store._free.append(orphan)
        manager._num_nodes -= 1
        found = self.checks_of(manager)
        assert "dangling" in found

    def test_lost_refcount_detected(self):
        manager, store, _ = self.build()
        victim = next(n for n in self.internal_ids(store)
                      if not store.is_terminal(store.hi_of(n)))
        store._ref[store.hi_of(victim)] = 0
        assert "refcount" in self.checks_of(manager)

    def test_stale_root_detected(self):
        manager, store, functions = self.build()
        root = functions[0].node
        assert not store.is_terminal(root)
        del store._tables[store.level_of(root)][
            (store.hi_of(root) << 32) | store.lo_of(root)]
        manager._num_nodes -= 1
        assert "root" in self.checks_of(manager)

    def test_node_count_mismatch_detected(self):
        manager, _, _ = self.build()
        manager._num_nodes += 3
        assert "count" in self.checks_of(manager)

    def test_corrupted_terminal_detected(self):
        manager, store, _ = self.build()
        store._level[0] = 5
        assert "terminal" in self.checks_of(manager)

    def test_column_length_mismatch_detected(self):
        manager, store, _ = self.build()
        store._ref.append(0)
        assert "table" in self.checks_of(manager)

    def test_live_id_on_free_list_detected(self):
        manager, store, _ = self.build()
        store._free.append(self.internal_ids(store)[0])
        assert "table" in self.checks_of(manager)

    def test_env_arming_sweeps_array_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        from repro.bdd import SanitizerError
        manager = Manager([f"x{i}" for i in range(4)], backend="array")
        f = manager.var("x0") & manager.var("x1")
        store = manager.store
        # Corrupt the *live* root: GC sweeps before it sweeps the
        # sanitizer, so a dead victim would simply be collected.
        victim = f.node
        store._hi[victim], store._lo[victim] = \
            store._lo[victim], store._hi[victim]
        with pytest.raises(SanitizerError):
            manager.collect_garbage()
