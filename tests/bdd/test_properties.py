"""Property-based tests of the BDD substrate (hypothesis).

Random boolean expressions are generated as syntax trees, built both as
BDDs and as Python closures, and compared on the full truth table —
canonicity, operator algebra, quantifier laws, cofactor contracts.
The iterative explicit-stack kernels are additionally cross-checked
against the brute-force truth-table oracle in ``tests/helpers.py``.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import Manager, constrain, restrict

from ..helpers import assert_equal_semantics, truth_table

NVARS = 8
NAMES = [f"v{i}" for i in range(NVARS)]


def exprs(depth: int = 4):
    """Strategy for boolean expression trees over NVARS variables."""
    leaves = st.one_of(
        st.sampled_from([("var", name) for name in NAMES]),
        st.sampled_from([("const", False), ("const", True)]),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.sampled_from(["and", "or", "xor"]), children,
                      children),
        )

    return st.recursive(leaves, extend, max_leaves=12)


# Recursion depth is bounded by the hypothesis strategy's max_leaves,
# not by BDD size.
def build(manager: Manager, expr) -> "Function":  # repro-lint: disable=RPR001
    op = expr[0]
    if op == "var":
        return manager.var(expr[1])
    if op == "const":
        return manager.true if expr[1] else manager.false
    if op == "not":
        return ~build(manager, expr[1])
    a = build(manager, expr[1])
    b = build(manager, expr[2])
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    return a ^ b


def evaluate(expr, env) -> bool:  # repro-lint: disable=RPR001
    op = expr[0]
    if op == "var":
        return env[expr[1]]
    if op == "const":
        return expr[1]
    if op == "not":
        return not evaluate(expr[1], env)
    a = evaluate(expr[1], env)
    b = evaluate(expr[2], env)
    if op == "and":
        return a and b
    if op == "or":
        return a or b
    return a != b


def all_envs():
    for bits in itertools.product([False, True], repeat=NVARS):
        yield dict(zip(NAMES, bits))


@settings(max_examples=120, deadline=None)
@given(exprs())
def test_bdd_matches_semantics(expr):
    manager = Manager(vars=NAMES)
    f = build(manager, expr)
    # The helpers oracle enumerates the full 2^NVARS truth table.
    expected = [evaluate(expr, {NAMES[i]: bool(k >> i & 1)
                                for i in range(NVARS)})
                for k in range(1 << NVARS)]
    assert truth_table(f, NAMES) == expected


@settings(max_examples=60, deadline=None)
@given(exprs(), exprs())
def test_operator_kernels_match_oracle(e1, e2):
    """Differential check of apply/not/ite against the brute-force
    oracle from tests/helpers.py."""
    manager = Manager(vars=NAMES)
    a = build(manager, e1)
    b = build(manager, e2)

    def ea(**env):
        return evaluate(e1, env)

    def eb(**env):
        return evaluate(e2, env)

    assert_equal_semantics(a & b, lambda **env: ea(**env) and eb(**env),
                           NAMES)
    assert_equal_semantics(a | b, lambda **env: ea(**env) or eb(**env),
                           NAMES)
    assert_equal_semantics(a ^ b, lambda **env: ea(**env) != eb(**env),
                           NAMES)
    assert_equal_semantics(~a, lambda **env: not ea(**env), NAMES)
    assert_equal_semantics(a - b, lambda **env: ea(**env)
                           and not eb(**env), NAMES)
    assert_equal_semantics(a.implies(b),
                           lambda **env: (not ea(**env)) or eb(**env),
                           NAMES)
    assert_equal_semantics(a.ite(b, ~b),
                           lambda **env: eb(**env) if ea(**env)
                           else not eb(**env), NAMES)


@settings(max_examples=80, deadline=None)
@given(exprs(), exprs())
def test_canonicity_equal_functions_same_node(e1, e2):
    manager = Manager(vars=NAMES)
    f = build(manager, e1)
    g = build(manager, e2)
    same = all(evaluate(e1, env) == evaluate(e2, env)
               for env in all_envs())
    assert (f.node == g.node) == same


@settings(max_examples=80, deadline=None)
@given(exprs())
def test_sat_count_matches_enumeration(expr):
    manager = Manager(vars=NAMES)
    f = build(manager, expr)
    expected = sum(evaluate(expr, env) for env in all_envs())
    assert f.sat_count() == expected


@settings(max_examples=60, deadline=None)
@given(exprs(), st.sampled_from(NAMES))
def test_quantifier_laws(expr, name):
    manager = Manager(vars=NAMES)
    f = build(manager, expr)
    exists = f.exists([name])
    forall = f.forall([name])
    assert forall <= f <= exists
    assert exists == (f.cofactor({name: True})
                      | f.cofactor({name: False}))
    assert forall == ~((~f).exists([name]))


@settings(max_examples=60, deadline=None)
@given(exprs(), exprs())
def test_generalized_cofactor_contracts(e1, e2):
    manager = Manager(vars=NAMES)
    f = build(manager, e1)
    c = build(manager, e2)
    for op in (restrict, constrain):
        r = op(f, c)
        assert (c & r) == (c & f)
    assert restrict(f, c).support() <= f.support()
    # constrain's decomposition identity
    if not c.is_constant:
        assert manager.ite(c, constrain(f, c), constrain(f, ~c)) == f


@settings(max_examples=40, deadline=None)
@given(exprs(), st.permutations(NAMES))
def test_reordering_preserves_semantics(expr, order):
    manager = Manager(vars=NAMES)
    f = build(manager, expr)
    table = [f(**env) for env in all_envs()]
    manager.reorder(list(order))
    manager.check_invariants()
    assert [f(**env) for env in all_envs()] == table


@settings(max_examples=40, deadline=None)
@given(exprs())
def test_sifting_preserves_semantics(expr):
    manager = Manager(vars=NAMES)
    f = build(manager, expr)
    count = f.sat_count()
    manager.reorder()
    manager.check_invariants()
    assert f.sat_count() == count


@settings(max_examples=60, deadline=None)
@given(exprs(), exprs(), exprs())
def test_ite_algebra(e1, e2, e3):
    manager = Manager(vars=NAMES)
    f = build(manager, e1)
    g = build(manager, e2)
    h = build(manager, e3)
    assert manager.ite(f, g, h) == ((f & g) | (~f & h))
