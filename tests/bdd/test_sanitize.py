"""Mutation tests: the graph sanitizer must catch seeded corruptions.

Each test corrupts one structural invariant of an otherwise healthy
manager and asserts that ``debug_check`` reports a diagnostic from the
matching check — the precision the CUDD ``Cudd_DebugCheck`` analogue
promises.  Everything here carries ``no_sanitize``: the autouse
teardown sweep would (correctly) blow up on the corpses these tests
leave behind.
"""

from __future__ import annotations

import os

import pytest

from repro.bdd import Manager, SanitizerError
from repro.bdd.node import Node
from repro.bdd.sanitize import check_manager

from ..helpers import fresh_manager

pytestmark = pytest.mark.no_sanitize

# Corruption seeding below mutates Node fields and ``_subtables``
# directly — surfaces only the object backend has.  The flat-store
# equivalents live in tests/bdd/test_backends.py.
object_only = pytest.mark.skipif(
    os.environ.get("REPRO_BACKEND", "object") not in ("", "object"),
    reason="seeds corruption through object-store Node internals",
)


def build_sample():
    manager, variables = fresh_manager(6)
    a, b, c, d = variables[:4]
    f = (a & b) | (c ^ d)
    g = a.ite(b | c, ~d)
    return manager, [f, g]


def checks_of(manager) -> set[str]:
    return {d.check for d in manager.debug_check(raise_on_error=False)}


def internal_nodes(manager):
    return [node for subtable in manager._subtables
            for node in subtable.values()]


def test_clean_manager_passes():
    manager, _ = build_sample()
    assert manager.debug_check() == []


def test_clean_manager_passes_after_gc():
    manager, functions = build_sample()
    del functions
    manager.collect_garbage()
    assert manager.debug_check() == []


@object_only
def test_swapped_children_detected():
    manager, _ = build_sample()
    victim = max(internal_nodes(manager), key=lambda n: n.level)
    victim.hi, victim.lo = victim.lo, victim.hi
    found = checks_of(manager)
    assert "key-sync" in found


@object_only
def test_redundant_node_detected():
    manager, _ = build_sample()
    victim = next(n for n in internal_nodes(manager)
                  if not n.hi.is_terminal)
    victim.lo = victim.hi
    assert "redundant" in checks_of(manager)


@object_only
def test_ordering_violation_detected():
    manager, _ = build_sample()
    # Lift a node's level above one of its children.
    victim = next(n for n in internal_nodes(manager)
                  if not n.hi.is_terminal)
    victim.level = victim.hi.level + 1
    found = checks_of(manager)
    assert "order" in found
    assert "level-sync" in found  # it also sits in the wrong subtable


@object_only
def test_duplicate_triple_detected():
    manager, _ = build_sample()
    victim = internal_nodes(manager)[0]
    # A second node with the same (level, hi, lo), smuggled into the
    # subtable under a different key — duplicates break hash-consing.
    clone = Node(victim.level, victim.hi, victim.lo)  # repro-lint: disable=RPR002
    manager._subtables[victim.level][("dup", id(clone))] = clone
    manager._num_nodes += 1
    found = checks_of(manager)
    assert "duplicate" in found
    assert "key-sync" in found  # the smuggled key cannot match either


@object_only
def test_dangling_child_detected():
    manager, _ = build_sample()
    victim = next(n for n in internal_nodes(manager)
                  if not n.lo.is_terminal)
    # Point lo at a node that is not in any subtable.
    orphan = Node(victim.lo.level, manager.one_node,  # repro-lint: disable=RPR002
                  manager.zero_node)
    victim.lo = orphan
    assert "dangling" in checks_of(manager)


def test_node_count_mismatch_detected():
    manager, _ = build_sample()
    manager._num_nodes += 3
    assert "count" in checks_of(manager)


@object_only
def test_lost_refcount_detected():
    manager, _ = build_sample()
    victim = next(n for n in internal_nodes(manager)
                  if not n.hi.is_terminal)
    victim.hi.ref = 0
    assert "refcount" in checks_of(manager)


@object_only
def test_stale_root_detected():
    manager, functions = build_sample()
    # Remove a root's node from the unique table behind the GC's back.
    node = functions[0].node
    assert not node.is_terminal
    del manager._subtables[node.level][(node.hi, node.lo)]
    manager._num_nodes -= 1
    assert "root" in checks_of(manager)


@object_only
def test_dangling_cache_entry_detected():
    manager, _ = build_sample()
    ghost = Node(0, manager.one_node, manager.zero_node)  # repro-lint: disable=RPR002
    manager.computed.insert("and", ("and", id(ghost)), ghost)
    found = checks_of(manager)
    assert "cache-dangling" in found
    # The cache check can be disabled independently.
    diagnostics = manager.debug_check(raise_on_error=False,
                                      check_cache=False)
    assert "cache-dangling" not in {d.check for d in diagnostics}


def test_incomplete_cache_entry_detected():
    # A None result is the signature of a kernel that parked an
    # in-progress marker and aborted — the clean-unwind contract
    # (docs/robustness.md) forbids it surviving a governor abort.
    manager, _ = build_sample()
    manager.computed.insert("and", ("and", 1, 2), None)
    assert "cache-incomplete" in checks_of(manager)


def test_unregistered_cache_op_detected():
    manager, _ = build_sample()
    manager.computed.insert("frobnicate",  # repro-lint: disable=RPR003
                            ("frobnicate", 1), manager.one_node)
    assert "cache-op" in checks_of(manager)


@object_only
def test_debug_check_raises_with_diagnostics():
    manager, _ = build_sample()
    victim = internal_nodes(manager)[0]
    victim.hi, victim.lo = victim.lo, victim.hi
    with pytest.raises(SanitizerError) as excinfo:
        manager.debug_check()
    assert excinfo.value.diagnostics
    assert "key-sync" in str(excinfo.value)


def test_check_manager_is_pure():
    """check_manager never mutates the graph it inspects."""
    manager, _ = build_sample()
    before = manager.stats.nodes
    assert check_manager(manager) == []
    assert manager.stats.nodes == before
    assert manager.debug_check() == []


@object_only
def test_sanitize_env_arming(monkeypatch):
    """REPRO_SANITIZE=1 makes GC raise on a corrupted graph."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    manager = Manager()
    variables = [manager.add_var(f"x{i}") for i in range(4)]
    f = variables[0] & variables[1]  # noqa: F841 - kept live
    victim = next(n for subtable in manager._subtables
                  for n in subtable.values())
    victim.hi, victim.lo = victim.lo, victim.hi
    with pytest.raises(SanitizerError):
        manager.collect_garbage()


@object_only
def test_sanitize_env_safe_point(monkeypatch):
    """Safe points sweep small managers when armed."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    monkeypatch.setenv("REPRO_SANITIZE_STRIDE", "1")
    manager = Manager()
    variables = [manager.add_var(f"x{i}") for i in range(4)]
    victim = next(n for subtable in manager._subtables
                  for n in subtable.values())
    victim.hi, victim.lo = victim.lo, victim.hi
    with pytest.raises(SanitizerError):
        variables[2] & variables[3]


@object_only
def test_sanitize_env_disabled(monkeypatch):
    """Without the env var, operations tolerate a corrupt graph."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    manager = Manager()
    variables = [manager.add_var(f"x{i}") for i in range(4)]
    victim = next(n for subtable in manager._subtables
                  for n in subtable.values())
    victim.hi, victim.lo = victim.lo, victim.hi
    variables[2] & variables[3]  # no sweep, no raise
