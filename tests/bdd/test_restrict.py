"""constrain and restrict: contracts and the Figure 1 remapping."""

from __future__ import annotations

from repro.bdd import Manager, constrain, restrict

from ..helpers import fresh_manager, random_function


class TestContracts:
    def test_agree_on_care_set(self, random_functions, rng):
        m, funcs = random_functions
        vs = [m.var(f"x{i}") for i in range(12)]
        for f in funcs:
            c = random_function(m, vs, rng, terms=4)
            for op in (restrict, constrain):
                r = op(f, c)
                assert (c & r) == (c & f), op.__name__

    def test_true_care_set_is_identity(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert restrict(f, m.true) == f
            assert constrain(f, m.true) == f

    def test_restrict_support_contained(self, random_functions, rng):
        m, funcs = random_functions
        vs = [m.var(f"x{i}") for i in range(12)]
        for f in funcs:
            c = random_function(m, vs, rng, terms=4)
            assert restrict(f, c).support() <= f.support()

    def test_constrain_identity_on_itself(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            # constrain(f, f) = 1 wherever f holds
            assert constrain(f, f).is_true or f.is_false

    def test_restrict_usually_shrinks(self, random_functions, rng):
        m, funcs = random_functions
        vs = [m.var(f"x{i}") for i in range(12)]
        shrunk = 0
        for f in funcs:
            c = random_function(m, vs, rng, terms=3)
            if len(restrict(f, c)) <= len(f):
                shrunk += 1
        # Not guaranteed, but should hold for most random instances.
        assert shrunk >= len(funcs) // 2


class TestFigure1:
    """The exact remapping scenario of Figure 1 of the paper.

    f tests x with children f_t and f_e; the care set c has its
    else-branch at 0, so restrict replaces f's else child with the then
    child, the x node becomes redundant, and the recursion continues on
    f_t.
    """

    def test_remapping_eliminates_node(self):
        m = Manager(vars=["x", "y", "z"])
        x, y, z = (m.var(n) for n in "xyz")
        f_t = y & z
        f_e = y | ~z
        f = m.ite(x, f_t, f_e)
        c = x  # c's else branch is the constant 0
        r = restrict(f, c)
        # The whole else branch is a don't-care: restrict returns the
        # then cofactor, eliminating the x node.
        assert r == f_t
        assert "x" not in r.support()
        assert len(r) < len(f)

    def test_remapping_agrees_on_care(self):
        m = Manager(vars=["x", "y", "z"])
        x, y, z = (m.var(n) for n in "xyz")
        f = m.ite(x, y & z, y | ~z)
        r = restrict(f, x)
        assert (x & r) == (x & f)

    def test_deep_care_zero_branch(self):
        # The care set kills a branch below the root.
        m = Manager(vars=["x", "y", "z"])
        x, y, z = (m.var(n) for n in "xyz")
        f = m.ite(x, m.ite(y, z, ~z), z)
        c = x.implies(y)
        r = restrict(f, c)
        assert (c & r) == (c & f)
        assert len(r) <= len(f)


class TestConstrainVsRestrict:
    def test_constrain_can_grow_support(self):
        # The classic example: constrain pulls care-set variables into
        # the result, restrict does not.
        m = Manager(vars=["a", "b", "c"])
        a, b, c = (m.var(n) for n in "abc")
        f = c
        care = a.equiv(b)
        constrained = constrain(f, care)
        restricted = restrict(f, care)
        assert restricted.support() <= f.support()
        # Both agree on the care set regardless.
        assert (care & constrained) == (care & f)
        assert (care & restricted) == (care & f)

    def test_constrain_decomposition_identity(self, random_functions,
                                              rng):
        # f = ite(c, constrain(f, c), constrain(f, ~c)) — the property
        # that makes constrain a *decomposition* operator.
        m, funcs = random_functions
        vs = [m.var(f"x{i}") for i in range(12)]
        for f in funcs[:4]:
            c = random_function(m, vs, rng, terms=3)
            assert m.ite(c, constrain(f, c), constrain(f, ~c)) == f

    def test_cross_manager_rejected(self):
        m1, vs1 = fresh_manager(2)
        m2, vs2 = fresh_manager(2)
        import pytest
        with pytest.raises(ValueError):
            restrict(vs1[0], vs2[0])
        with pytest.raises(ValueError):
            constrain(vs1[0], vs2[0])
