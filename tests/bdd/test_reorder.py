"""Dynamic reordering: swaps preserve semantics, sifting shrinks."""

from __future__ import annotations


import pytest

from repro.bdd import Manager
from repro.bdd.reorder import set_order, sift, swap_adjacent

from ..helpers import fresh_manager, random_function, truth_table


def _tables(funcs, names):
    return [truth_table(f, names) for f in funcs]


class TestSwapAdjacent:
    def test_swap_exchanges_variables(self):
        m, vs = fresh_manager(2)
        f = vs[0] & ~vs[1]
        m.collect_garbage()
        swap_adjacent(m, 0)
        assert m.var_names == ["x1", "x0"]
        assert f(x0=True, x1=False)
        m.check_invariants()

    def test_swap_preserves_semantics_randomized(self, rng):
        m, vs = fresh_manager(7)
        funcs = [random_function(m, vs, rng, terms=5) for _ in range(4)]
        names = [f"x{i}" for i in range(7)]
        before = _tables(funcs, names)
        m.collect_garbage()
        for _ in range(60):
            swap_adjacent(m, rng.randrange(6))
            m.check_invariants()
        assert _tables(funcs, names) == before

    def test_swap_is_involution(self, rng):
        m, vs = fresh_manager(5)
        f = random_function(m, vs, rng)
        m.collect_garbage()
        order = m.var_names
        size = len(m)
        swap_adjacent(m, 2)
        swap_adjacent(m, 2)
        assert m.var_names == order
        assert len(m) == size
        assert f is not None


class TestSift:
    def test_sift_reduces_separated_adder(self):
        # Non-interleaved adder carry: sifting should find a much
        # smaller (interleaved-ish) order.
        m = Manager()
        n = 8
        a = [m.add_var(f"a{i}") for i in range(n)]
        b = [m.add_var(f"b{i}") for i in range(n)]
        carry = m.false
        for x, y in zip(a, b):
            carry = (x & y) | (carry & (x ^ y))
        before = len(carry)
        sift(m)
        after = len(carry)
        assert after < before
        m.check_invariants()

    def test_sift_preserves_functions(self, rng):
        m, vs = fresh_manager(9)
        funcs = [random_function(m, vs, rng, terms=6) for _ in range(5)]
        counts = [f.sat_count() for f in funcs]
        sift(m)
        m.check_invariants()
        assert counts == [f.sat_count() for f in funcs]

    def test_sift_trivial_managers(self):
        m = Manager()
        assert sift(m) == 0
        m.add_var("a")
        sift(m)
        m.check_invariants()

    def test_reorder_count_increments(self, rng):
        m, vs = fresh_manager(4)
        _ = random_function(m, vs, rng)
        n = m.reorder_count
        m.reorder()
        assert m.reorder_count == n + 1


class TestSetOrder:
    def test_exact_permutation(self, rng):
        m, vs = fresh_manager(6)
        f = random_function(m, vs, rng)
        names = [f"x{i}" for i in range(6)]
        before = truth_table(f, names)
        target = ["x3", "x0", "x5", "x1", "x4", "x2"]
        set_order(m, target)
        assert m.var_names == target
        assert truth_table(f, names) == before
        m.check_invariants()

    def test_reverse_order(self, rng):
        m, vs = fresh_manager(5)
        f = random_function(m, vs, rng)
        count = f.sat_count()
        set_order(m, m.var_names[::-1])
        assert f.sat_count() == count

    def test_invalid_permutation_rejected(self):
        m, vs = fresh_manager(3)
        with pytest.raises(ValueError):
            set_order(m, ["x0", "x1"])
        with pytest.raises(ValueError):
            set_order(m, ["x0", "x1", "x1"])

    def test_quantify_after_reorder(self, rng):
        m, vs = fresh_manager(6)
        f = random_function(m, vs, rng)
        e_before = f.exists(["x2"]).sat_count()
        set_order(m, m.var_names[::-1])
        assert f.exists(["x2"]).sat_count() == e_before
