"""Minterm counting, density, path profiles."""

from __future__ import annotations

import math

import pytest

from repro.bdd import Manager, density, log2int, shared_size
from repro.bdd.counting import (distance_from_root, distance_to_one,
                                height_map, minterm_count_map, path_count)

from ..helpers import fresh_manager, truth_table


class TestSatCount:
    def test_constants(self):
        m = Manager(vars=["a", "b"])
        assert m.true.sat_count() == 4
        assert m.false.sat_count() == 0

    def test_single_variable(self):
        m, vs = fresh_manager(5)
        assert vs[0].sat_count() == 16

    def test_matches_truth_table(self, random_functions):
        m, funcs = random_functions
        names = [f"x{i}" for i in range(12)]
        for f in funcs[:4]:
            expected = sum(truth_table(f, names))
            assert f.sat_count() == expected

    def test_complement_counts(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert f.sat_count() + (~f).sat_count() == 2 ** 12

    def test_custom_nvars(self):
        m, vs = fresh_manager(3)
        f = vs[0]
        assert f.sat_count(5) == 16
        with pytest.raises(ValueError):
            f.sat_count(0)

    def test_huge_counts_are_exact(self):
        m, vs = fresh_manager(200)
        f = vs[0] | vs[199]
        expected = 2 ** 200 - 2 ** 198
        assert f.sat_count() == expected


def _random_dnf(rng, nvars=8, terms=6, width=3):
    """A reproducible random DNF as (name, polarity) term lists."""
    names = [f"x{i}" for i in range(nvars)]
    return names, [[(name, rng.random() < 0.5)
                    for name in rng.sample(names, width)]
                   for _ in range(terms)]


def _build(manager, terms):
    f = manager.false
    for term in terms:
        cube = manager.true
        for name, polarity in term:
            var = manager.var(name)
            cube &= var if polarity else ~var
        f |= cube
    return f


class TestVectorizedSatCount:
    """ArrayStore.sat_count_vector against the object-backend count."""

    def _pairs(self, count=20, seed=20260808):
        import random
        rng = random.Random(seed)
        for _ in range(count):
            names, terms = _random_dnf(rng)
            obj = Manager(vars=names, backend="object")
            arr = Manager(vars=names, backend="array")
            yield _build(obj, terms), _build(arr, terms)

    def test_differential_random_functions(self):
        for f_obj, f_arr in self._pairs():
            assert f_arr.sat_count() == f_obj.sat_count()
            assert (~f_arr).sat_count() == (~f_obj).sat_count()

    def test_pure_python_fallback_matches(self, monkeypatch):
        from repro.bdd import arraystore
        monkeypatch.setattr(arraystore, "_np", None)
        for f_obj, f_arr in self._pairs(count=8):
            assert f_arr.sat_count() == f_obj.sat_count()

    def test_wide_counts_take_python_branch(self):
        # nvars > 61 overflows int64, so the numpy path must bow out;
        # the pure-python sweep still returns the exact big integer.
        names, terms = _random_dnf(__import__("random").Random(7))
        arr = Manager(vars=names, backend="array")
        f = _build(arr, terms)
        narrow = f.sat_count()
        assert f.sat_count(100) == narrow << 92

    def test_vector_refuses_unvalidatable_support(self):
        # sat_count_vector sweeps whole store levels, so it cannot
        # count over fewer variables than the store declares; the hook
        # must fall back (None), never return a wrong count.
        arr = Manager(vars=[f"x{i}" for i in range(8)], backend="array")
        f = arr.var("x0")
        assert arr.store.sat_count_vector(f.node, 3) is None
        assert f.sat_count() == 128

    def test_vector_terminals(self):
        arr = Manager(vars=["a", "b"], backend="array")
        assert arr.store.sat_count_vector(arr.true.node, 2) == 4
        assert arr.store.sat_count_vector(arr.false.node, 2) == 0
    def test_internal_counts(self):
        m, vs = fresh_manager(3)
        f = vs[0] & vs[1] & vs[2]
        counts = minterm_count_map(m.store, f.node, 3)
        # Bottom node (x2, over 1 var): 1 minterm; middle: 1; top: 1.
        assert counts[f.node] == 1

    def test_root_count_scales(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            counts = minterm_count_map(m.store, f.node, 12)
            assert counts[f.node] << m.store.level_of(f.node) \
                == f.sat_count()


class TestDensity:
    def test_definition(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            expected = f.sat_count() / len(f)
            assert math.isclose(density(f), expected, rel_tol=1e-9)

    def test_false_density_zero(self):
        m = Manager(vars=["a"])
        assert density(m.false) == 0.0

    def test_true_density(self):
        m = Manager(vars=["a", "b"])
        assert density(m.true) == 4.0

    def test_no_overflow_on_many_vars(self):
        m, vs = fresh_manager(400)
        f = vs[0]
        d = density(f)
        assert d == pytest.approx(2.0 ** 399)


class TestLog2Int:
    def test_small(self):
        assert log2int(8) == 3.0

    def test_large(self):
        n = 3 ** 500
        assert log2int(n) == pytest.approx(500 * math.log2(3), rel=1e-12)

    def test_non_positive(self):
        with pytest.raises(ValueError):
            log2int(0)


class TestSharedSize:
    def test_disjoint_functions_add(self):
        m, vs = fresh_manager(4)
        f = vs[0] & vs[1]
        g = vs[2] & vs[3]
        assert shared_size(m.store, [f.node, g.node]) == len(f) + len(g)

    def test_identical_functions_counted_once(self):
        m, vs = fresh_manager(3)
        f = vs[0] | vs[2]
        assert shared_size(m.store, [f.node, f.node]) == len(f)


class TestPathProfiles:
    def test_distance_from_root(self):
        m, vs = fresh_manager(3)
        f = vs[0] & vs[1] & vs[2]
        dist = distance_from_root(m.store, f.node)
        assert dist[f.node] == 0
        assert dist[m.one_node] == 3
        assert dist[m.zero_node] == 1  # first else-arc

    def test_distance_to_one(self):
        m, vs = fresh_manager(3)
        f = vs[0] & vs[1] & vs[2]
        dist = distance_to_one(m.store, f.node)
        assert dist[f.node] == 3

    def test_every_internal_node_reaches_one(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            dist = distance_to_one(m.store, f.node)
            internal = {n: d for n, d in dist.items()
                        if not m.store.is_terminal(n)}
            assert all(d != math.inf for d in internal.values())

    def test_height_map(self):
        m, vs = fresh_manager(4)
        f = vs[0] & vs[1] & vs[2] & vs[3]
        heights = height_map(m.store, f.node)
        assert heights[f.node] == 4

    def test_path_count_cube(self):
        m, vs = fresh_manager(3)
        f = vs[0] & vs[1] & vs[2]
        # One path to ONE, three paths to ZERO.
        assert path_count(m.store, f.node) == 4

    def test_path_count_terminal(self):
        m = Manager()
        assert path_count(m.store, m.true.node) == 1
