"""Resource governor: budgets, fault injection, clean unwind.

The randomized suite here is the enforcement arm of the governor's
clean-unwind contract (see ``docs/robustness.md``): hundreds of
injected kernel aborts across every governed kernel, each followed by
a full sanitizer sweep and an exact re-run check against an
independent, same-seed manager.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.bdd import (Budget, BudgetExceeded, DeadlineExceeded,
                       InjectedAbort, ResourceError)
from repro.bdd.governor import CHECK_STRIDE, injection_from_env
from repro.bdd.io import dump, transfer
from repro.bdd.restrict import constrain, restrict
from repro.core.approx.remap import remap_under_approx

from ..helpers import fresh_manager, random_function

#: Snapshot of the CI sweep's injection spec, taken before the autouse
#: fixture scrubs the environment (the env-smoke test replays it).
_ENV_INJECTION = os.environ.get("REPRO_INJECT_ABORT")


@pytest.fixture(autouse=True)
def _no_env_injection(monkeypatch):
    """Keep ambient ``REPRO_INJECT_ABORT`` from arming every manager.

    Under the CI fault-injection sweep the variable is set for the
    whole pytest run; without this scrub each test's managers would
    abort at an arbitrary point.  The dedicated env-smoke test re-sets
    it explicitly (replaying the sweep's spec via ``_ENV_INJECTION``).
    """
    monkeypatch.delenv("REPRO_INJECT_ABORT", raising=False)


NVARS = 14
#: Variables quantified out by the exists/and_exists workloads — the
#: *deepest* levels, so quantification traverses the whole graph
#: instead of stopping at the top levels.
QVARS = 6

#: Workload names.  Each drives the matching governed kernel long
#: enough (hundreds of matching kernel steps on the seeded operands,
#: verified by probing) that an injection within the first three
#: strides always fires.  The ``remap`` workload runs the RUA rebuild
#: with ``replacements=()`` so markNodes/buildResult traverse the whole
#: graph — with replacements enabled, an accepted replacement near the
#: root can collapse the traversal under one checkpoint stride.
WORKLOADS = ("andex", "apply", "constrain", "exists", "ite", "remap",
             "restrict")


def build_workload(seed: int):
    """A manager plus thunks running one governed operation each.

    All derived operands are computed *here*, before any injection is
    armed, so each thunk exercises exactly its own kernel(s).
    """
    manager, variables = fresh_manager(NVARS)
    rng = random.Random(seed)
    f = random_function(manager, variables, rng, terms=18, width=4)
    g = random_function(manager, variables, rng, terms=18, width=4)
    h = random_function(manager, variables, rng, terms=18, width=4)
    care = g | h
    union = f | g
    names = [v.var for v in variables[-QVARS:]]
    ops = {
        "apply": lambda: f & g,
        "ite": lambda: f.ite(g, h),
        "exists": lambda: f.exists(names),
        "andex": lambda: f.and_exists(g, names),
        "constrain": lambda: constrain(f, care),
        "restrict": lambda: restrict(f, care),
        "remap": lambda: remap_under_approx(union, threshold=0,
                                            replacements=()),
    }
    return manager, ops


#: Trials per workload: 7 x 30 = 210 injected aborts per run, each
#: sanitizer-swept and re-run — the >= 200 bar of the robustness work.
TRIALS = 30


def _seed(workload: str, trial: int) -> int:
    return (WORKLOADS.index(workload) + 1) * 10_000 + trial


# ----------------------------------------------------------------------
# The randomized fault-injection suite
# ----------------------------------------------------------------------

@pytest.mark.parametrize("workload", WORKLOADS)
def test_injected_aborts_unwind_cleanly(workload):
    """Abort each kernel at a random stride; the manager must stay
    consistent and the re-run must reproduce the unbudgeted result."""
    for trial in range(TRIALS):
        seed = _seed(workload, trial)
        manager, ops = build_workload(seed)
        rng = random.Random(seed ^ 0x5EED)
        manager.governor.inject_abort_after(
            CHECK_STRIDE * rng.randint(1, 3), op=workload)
        with pytest.raises(InjectedAbort):
            ops[workload]()
        # Clean unwind: the whole graph passes the sanitizer right
        # after the abort, injection is spent, the abort is recorded.
        assert manager.debug_check() == []
        assert not manager.governor.injection_pending
        assert manager.stats.aborts == {workload: 1}
        # The re-run (reusing any memoized sub-results of the aborted
        # attempt) must equal an independent same-seed manager's
        # result exactly.
        rerun = ops[workload]()
        other_manager, other_ops = build_workload(seed)
        expected = other_ops[workload]()
        assert transfer(rerun, other_manager) == expected
        assert manager.debug_check() == []


def test_abort_then_gc_reclaims_partial_nodes():
    manager, ops = build_workload(42)
    manager.collect_garbage()  # sweep construction garbage first
    live_before = len(manager)
    manager.governor.inject_abort_after(CHECK_STRIDE, op="apply")
    with pytest.raises(InjectedAbort):
        ops["apply"]()
    # The aborted attempt left rootless partial nodes behind; GC
    # reclaims every one of them.
    manager.collect_garbage()
    assert len(manager) == live_before
    assert manager.debug_check() == []


def test_abort_mid_ite_with_thrashing_cache_rerun_identical():
    """Cache eviction interleaved with an abort must not corrupt
    results: with a one-entry computed table (maximum eviction
    pressure), an aborted ``ite`` re-runs byte-identically."""
    seed = 7
    manager, ops = build_workload(seed)
    manager.set_cache_limit(1)
    manager.governor.inject_abort_after(CHECK_STRIDE * 2, op="ite")
    with pytest.raises(InjectedAbort):
        ops["ite"]()
    assert manager.debug_check() == []
    rerun = ops["ite"]()
    other_manager, other_ops = build_workload(seed)
    expected = other_ops["ite"]()
    assert transfer(rerun, other_manager) == expected
    assert dump(rerun) == dump(expected)
    assert manager.computed.totals().evictions > 0


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------

class TestBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(node_budget=0)
        with pytest.raises(ValueError):
            Budget(step_budget=-1)
        with pytest.raises(ValueError):
            Budget(deadline=-0.1)

    def test_unbounded(self):
        assert Budget().unbounded
        assert not Budget(node_budget=1).unbounded

    def test_exception_hierarchy(self):
        assert issubclass(BudgetExceeded, ResourceError)
        assert issubclass(DeadlineExceeded, ResourceError)
        assert issubclass(InjectedAbort, BudgetExceeded)


class TestWithBudget:
    def test_node_budget_aborts_and_restores(self):
        manager, ops = build_workload(1)
        baseline = len(manager)
        with pytest.raises(BudgetExceeded):
            with manager.with_budget(node_budget=baseline + 8):
                ops["apply"]()
        assert not manager.governor.armed
        assert manager.debug_check() == []
        assert manager.stats.aborts == {"apply": 1}
        assert manager.stats.budget_peak_nodes > baseline
        # Unbudgeted, the same operation completes fine.
        ops["apply"]()

    def test_step_budget_aborts(self):
        manager, ops = build_workload(2)
        with pytest.raises(BudgetExceeded):
            with manager.with_budget(step_budget=CHECK_STRIDE):
                ops["ite"]()
        assert manager.stats.budget_peak_steps > CHECK_STRIDE
        assert manager.debug_check() == []

    def test_deadline_aborts(self):
        manager, ops = build_workload(3)
        with pytest.raises(DeadlineExceeded):
            with manager.with_budget(deadline=0.0):
                ops["apply"]()
        assert manager.debug_check() == []

    def test_step_window_is_per_scope(self):
        """Each armed scope gets a fresh step window, so a long-lived
        manager can run many bounded scopes back to back."""
        manager, ops = build_workload(4)
        for name in ("apply", "ite", "exists"):
            with manager.with_budget(step_budget=1_000_000):
                ops[name]()  # never near the bound, must not abort

    def test_nesting_inner_budget_wins(self):
        manager, ops = build_workload(5)
        with manager.with_budget(step_budget=10_000_000):
            with pytest.raises(BudgetExceeded):
                with manager.with_budget(step_budget=CHECK_STRIDE):
                    ops["apply"]()
            # Outer (roomy) budget restored: work completes.
            assert manager.governor.step_budget == 10_000_000
            ops["apply"]()
        assert not manager.governor.armed

    def test_remaining_steps(self):
        manager, _ = fresh_manager(2)
        assert manager.governor.remaining_steps() is None
        with manager.with_budget(step_budget=100):
            assert manager.governor.remaining_steps() == 100


class TestSuspended:
    def test_suspends_budget_and_injection(self):
        manager, ops = build_workload(6)
        governor = manager.governor
        governor.inject_abort_after(CHECK_STRIDE, op="apply")
        with manager.with_budget(step_budget=CHECK_STRIDE):
            with governor.suspended():
                ops["apply"]()  # neither budget nor injection fires
            assert governor.step_budget == CHECK_STRIDE
        assert governor.injection_pending
        governor.clear_injection()
        assert not governor.injection_pending


# ----------------------------------------------------------------------
# Fault-injection plumbing
# ----------------------------------------------------------------------

class TestInjection:
    def test_inject_validation(self):
        manager, _ = fresh_manager(2)
        with pytest.raises(ValueError):
            manager.governor.inject_abort_after(0)

    def test_injection_is_one_shot(self):
        manager, ops = build_workload(8)
        manager.governor.inject_abort_after(CHECK_STRIDE)
        with pytest.raises(InjectedAbort):
            ops["apply"]()
        # Spent: the very same call now completes.
        ops["apply"]()

    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_ABORT", "apply:128")
        assert injection_from_env() == ("apply", 128)
        monkeypatch.delenv("REPRO_INJECT_ABORT")
        assert injection_from_env() is None
        for bad in ("apply:", "apply:x", ":64", "apply:0"):
            monkeypatch.setenv("REPRO_INJECT_ABORT", bad)
            with pytest.raises(ValueError):
                injection_from_env()

    def test_env_injection_smoke(self, monkeypatch):
        """End-to-end replay of the CI sweep: the env spec arms every
        fresh manager, the abort fires mid-kernel, the manager stays
        clean, and the workload completes on re-run."""
        spec = _ENV_INJECTION or "apply:64"
        monkeypatch.setenv("REPRO_INJECT_ABORT", spec)
        manager, variables = fresh_manager(NVARS)
        assert manager.governor.injection_pending
        rng = random.Random(9)
        fired = False
        try:
            # Mixed workload covering every op the CI matrix injects
            # into; caches are cleared between rounds so kernels keep
            # doing real work until the abort lands.
            for _ in range(20):
                f = random_function(manager, variables, rng, terms=18,
                                    width=4)
                g = random_function(manager, variables, rng, terms=18,
                                    width=4)
                names = [v.var for v in variables[-QVARS:]]
                f & g
                f.ite(g, f ^ g)
                f.and_exists(g, names)
                f.exists(names)
                manager.computed.clear()
        except InjectedAbort:
            fired = True
        assert fired, f"injection {spec!r} never fired"
        assert manager.debug_check() == []
        assert not manager.governor.injection_pending
        assert manager.stats.total_aborts == 1
        # The manager keeps working normally after the abort.
        f = random_function(manager, variables, rng, terms=18, width=4)
        g = random_function(manager, variables, rng, terms=18, width=4)
        assert (f & g) <= f


# ----------------------------------------------------------------------
# Statistics and manager integration
# ----------------------------------------------------------------------

class TestStats:
    def test_checkpoint_counters_accumulate(self):
        manager, ops = build_workload(10)
        governor = manager.governor
        ops["apply"]()
        assert governor.steps > 0 and governor.checkpoints > 0

    def test_stats_surface_and_reset(self):
        manager, ops = build_workload(11)
        manager.governor.inject_abort_after(CHECK_STRIDE, op="apply")
        with pytest.raises(InjectedAbort):
            ops["apply"]()
        stats = manager.stats
        assert stats.aborts == {"apply": 1}
        assert stats.total_aborts == 1
        as_dict = stats.as_dict()
        assert as_dict["aborts"] == {"apply": 1}
        assert "degradations" in as_dict
        manager.reset_stats()
        stats = manager.stats
        assert stats.aborts == {} and stats.total_aborts == 0
        assert stats.budget_peak_nodes == 0

    def test_record_degradation(self):
        manager, _ = fresh_manager(2)
        manager.record_degradation("subset")
        manager.record_degradation("subset")
        manager.record_degradation("gc")
        stats = manager.stats
        assert stats.degradations == {"subset": 2, "gc": 1}
        assert stats.total_degradations == 3


class TestDeferGc:
    def test_deferred_collection_runs_when_body_raises(self):
        """``defer_gc`` must run the postponed safe point even on an
        exception — an aborted algorithm cannot wedge GC off."""
        manager, variables = fresh_manager(8)
        rng = random.Random(0)
        garbage = random_function(manager, variables, rng, terms=12)
        live = len(manager)
        manager.gc_threshold = 1  # every safe point wants to collect
        before = manager.stats.gc_count
        with pytest.raises(RuntimeError):
            with manager.defer_gc():
                del garbage
                raise RuntimeError("kernel abort mid-deferral")
        assert manager._gc_defer == 0
        assert manager.stats.gc_count > before
        assert len(manager) < live  # the dropped function was swept
        assert manager.debug_check() == []

    def test_defer_gc_still_nests(self):
        manager, variables = fresh_manager(4)
        manager.gc_threshold = 1
        with manager.defer_gc():
            with manager.defer_gc():
                assert manager._gc_defer == 2
            assert manager._gc_defer == 1
        assert manager._gc_defer == 0
