"""Function handles: identity, predicates, structure, iteration."""

from __future__ import annotations

import pytest

from repro.bdd import Manager

from ..helpers import fresh_manager, random_function


class TestIdentity:
    def test_equality_is_canonical(self):
        m, vs = fresh_manager(3)
        assert (vs[0] | vs[1]) == (vs[1] | vs[0])

    def test_cross_manager_rejected(self):
        m1, vs1 = fresh_manager(2)
        m2, vs2 = fresh_manager(2)
        with pytest.raises(ValueError):
            vs1[0] & vs2[0]

    def test_bool_coercion(self):
        m, vs = fresh_manager(1)
        assert (vs[0] & True) == vs[0]
        assert (vs[0] & False).is_false
        assert (vs[0] | True).is_true
        assert (vs[0] ^ True) == ~vs[0]

    def test_type_error(self):
        m, vs = fresh_manager(1)
        with pytest.raises(TypeError):
            vs[0] & 3

    def test_hashable(self):
        m, vs = fresh_manager(2)
        s = {vs[0] & vs[1], vs[1] & vs[0]}
        assert len(s) == 1


class TestPredicates:
    def test_constants(self):
        m = Manager()
        assert m.true.is_constant and m.false.is_constant
        assert not m.true.is_false and not m.false.is_true

    def test_var_property(self):
        m, vs = fresh_manager(2)
        assert (vs[1] & vs[0]).var == "x0"
        with pytest.raises(ValueError):
            m.true.var

    def test_level(self):
        m, vs = fresh_manager(3)
        assert vs[2].level == 2
        assert (vs[1] | vs[2]).level == 1


class TestSetAlgebra:
    def test_difference(self):
        m, vs = fresh_manager(3)
        f = vs[0] | vs[1]
        g = vs[1]
        assert (f - g) == (vs[0] & ~vs[1])

    def test_implies_equiv(self):
        m, vs = fresh_manager(2)
        a, b = vs
        assert a.implies(b) == (~a | b)
        assert a.equiv(b) == ~(a ^ b)

    def test_containment_chain(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            for g in funcs:
                inter = f & g
                union = f | g
                assert inter <= f <= union
                assert inter <= g <= union


class TestSupport:
    def test_support_exact(self):
        m, vs = fresh_manager(5)
        f = vs[1] & (vs[3] | vs[4])
        assert f.support() == {"x1", "x3", "x4"}

    def test_constant_support_empty(self):
        m = Manager()
        assert m.true.support() == set()

    def test_xor_masked_variable(self):
        m, vs = fresh_manager(2)
        f = (vs[0] & vs[1]) ^ (vs[0] & vs[1])
        assert f.support() == set()


class TestSize:
    def test_len_counts_internal_nodes(self):
        m, vs = fresh_manager(3)
        assert len(m.true) == 0
        assert len(vs[0]) == 1
        chain = vs[0] & vs[1] & vs[2]
        assert len(chain) == 3

    def test_xor_chain_size(self):
        m, vs = fresh_manager(6)
        f = vs[0]
        for v in vs[1:]:
            f = f ^ v
        # XOR chain in order: 2 nodes per level except the last.
        assert len(f) == 2 * 6 - 1


class TestPickAndIterate:
    def test_pick_one_satisfies(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assignment = f.pick_one()
            assert assignment is not None
            full = {name: assignment.get(name, False)
                    for name in m.var_names}
            assert f(**full)

    def test_pick_one_of_false(self):
        m = Manager()
        assert m.false.pick_one() is None

    def test_iter_minterms_count(self):
        m, vs = fresh_manager(4)
        f = (vs[0] & vs[1]) | (vs[2] & vs[3])
        minterms = list(f.iter_minterms(["x0", "x1", "x2", "x3"]))
        assert len(minterms) == f.sat_count(4)
        for assignment in minterms:
            assert f(**assignment)

    def test_iter_minterms_default_support(self):
        m, vs = fresh_manager(4)
        f = vs[1] & ~vs[2]
        minterms = list(f.iter_minterms())
        assert minterms == [{"x1": True, "x2": False}]

    def test_iter_minterms_outside_support_raises(self):
        m, vs = fresh_manager(2)
        f = vs[0] & vs[1]
        with pytest.raises(ValueError):
            list(f.iter_minterms(["x0"]))


class TestGarbageInteraction:
    def test_many_temporaries_then_gc(self, rng):
        m, vs = fresh_manager(8)
        f = random_function(m, vs, rng)
        expected = f.sat_count()
        for _ in range(50):
            g = random_function(m, vs, rng, terms=3)
            _ = g & f
        import gc
        gc.collect()
        m.collect_garbage()
        assert f.sat_count() == expected
        m.check_invariants()
