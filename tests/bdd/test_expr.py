"""Boolean expression parser."""

from __future__ import annotations

import pytest

from repro.bdd import ExprError, Manager, parse

from ..helpers import fresh_manager


class TestParse:
    def test_precedence(self):
        m, vs = fresh_manager(3)
        f = parse(m, "x0 | x1 & x2")
        assert f == (vs[0] | (vs[1] & vs[2]))

    def test_xor_between_or_and_and(self):
        m, vs = fresh_manager(3)
        f = parse(m, "x0 ^ x1 & x2 | x0")
        assert f == ((vs[0] ^ (vs[1] & vs[2])) | vs[0])

    def test_negation_forms(self):
        m, vs = fresh_manager(2)
        assert parse(m, "!x0") == ~vs[0]
        assert parse(m, "~x0") == ~vs[0]
        assert parse(m, "!!x0") == vs[0]

    def test_parentheses(self):
        m, vs = fresh_manager(3)
        f = parse(m, "(x0 | x1) & x2")
        assert f == ((vs[0] | vs[1]) & vs[2])

    def test_implication_right_associative(self):
        m, vs = fresh_manager(3)
        f = parse(m, "x0 -> x1 -> x2")
        assert f == vs[0].implies(vs[1].implies(vs[2]))

    def test_iff(self):
        m, vs = fresh_manager(2)
        assert parse(m, "x0 <-> x1") == vs[0].equiv(vs[1])

    def test_constants(self):
        m = Manager()
        assert parse(m, "0 | 1").is_true
        assert parse(m, "1 & 0").is_false

    def test_declares_variables_in_order(self):
        m = Manager()
        parse(m, "b & a | c")
        assert m.var_names == ["b", "a", "c"]

    def test_declare_false_rejects_unknown(self):
        m = Manager(vars=["a"])
        with pytest.raises(ExprError):
            parse(m, "a & b", declare=False)

    def test_primed_names(self):
        m = Manager()
        f = parse(m, "q' & !q")
        assert f.support() == {"q'", "q"}

    def test_errors(self):
        m = Manager()
        for bad in ["", "a &", "(a", "a b", "a @ b", "& a", "a )"]:
            with pytest.raises(ExprError):
                parse(m, bad)

    def test_roundtrip_semantics(self):
        m, vs = fresh_manager(4)
        f = parse(m, "(x0 -> x1) & (x2 <-> !x3)")
        for k in range(16):
            env = {f"x{i}": bool(k >> i & 1) for i in range(4)}
            expected = ((not env["x0"]) or env["x1"]) and \
                (env["x2"] == (not env["x3"]))
            assert f(**env) == expected
