"""Node primitives.

These poke :class:`~repro.bdd.node.Node` attributes directly, so they
only make sense on the object backend; integer handles have none of
these fields (see ``docs/backends.md``).
"""

from __future__ import annotations

import os

import pytest

from repro.bdd import TERMINAL_LEVEL, Manager

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_BACKEND", "object") not in ("", "object"),
    reason="exercises Node attributes specific to the object backend",
)


class TestNode:
    def test_terminal_flags(self):
        m = Manager()
        assert m.one_node.is_terminal
        assert m.zero_node.is_terminal
        assert m.one_node.value == 1
        assert m.zero_node.value == 0
        assert m.one_node.level == TERMINAL_LEVEL

    def test_internal_node_fields(self):
        m = Manager(vars=["a"])
        node = m.var("a").node
        assert not node.is_terminal
        assert node.value is None
        assert node.level == 0
        assert node.hi is m.one_node
        assert node.lo is m.zero_node

    def test_identity_hashing(self):
        m = Manager(vars=["a", "b"])
        n1 = m.var("a").node
        n2 = m.var("a").node
        assert n1 is n2
        assert len({n1, n2}) == 1

    def test_terminal_level_above_all_variables(self):
        m = Manager(vars=[f"v{i}" for i in range(100)])
        assert all(m.var(f"v{i}").node.level < TERMINAL_LEVEL
                   for i in range(100))

    def test_ref_counts_start_consistent(self):
        m = Manager(vars=["a", "b"])
        f = m.var("a") & m.var("b")
        m.collect_garbage()
        # After GC, the root carries its external reference.
        assert f.node.ref >= 1
