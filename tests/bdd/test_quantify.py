"""Quantification laws and the fused relational product."""

from __future__ import annotations

from repro.bdd import Manager

from ..helpers import fresh_manager, random_function


class TestExists:
    def test_exists_is_disjunction_of_cofactors(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            e = f.exists(["x0"])
            assert e == (f.cofactor({"x0": True})
                         | f.cofactor({"x0": False}))

    def test_exists_removes_support(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            e = f.exists(["x1", "x5"])
            assert not ({"x1", "x5"} & e.support())

    def test_exists_monotone(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert f <= f.exists(["x2", "x3"])

    def test_exists_empty_set(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert f.exists([]) == f

    def test_exists_commutes(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert f.exists(["x0"]).exists(["x4"]) \
                == f.exists(["x4", "x0"])

    def test_exists_all_support(self):
        m, vs = fresh_manager(3)
        f = vs[0] & ~vs[1]
        assert f.exists(["x0", "x1"]).is_true
        assert m.false.exists(["x0"]).is_false


class TestForall:
    def test_forall_is_conjunction_of_cofactors(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            a = f.forall(["x0"])
            assert a == (f.cofactor({"x0": True})
                         & f.cofactor({"x0": False}))

    def test_forall_antimonotone(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert f.forall(["x2", "x3"]) <= f

    def test_duality(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert f.forall(["x1", "x6"]) == ~((~f).exists(["x1", "x6"]))


class TestAndExists:
    def test_matches_two_step(self, random_functions, rng):
        m, funcs = random_functions
        vs = [m.var(f"x{i}") for i in range(12)]
        for f in funcs:
            g = random_function(m, vs, rng, terms=5)
            fused = f.and_exists(g, ["x0", "x3", "x7"])
            two_step = (f & g).exists(["x0", "x3", "x7"])
            assert fused == two_step

    def test_with_empty_quantifier(self, random_functions):
        m, funcs = random_functions
        f, g = funcs[0], funcs[1]
        assert f.and_exists(g, []) == (f & g)

    def test_terminal_arguments(self):
        m, vs = fresh_manager(2)
        f = vs[0] & vs[1]
        assert m.true.and_exists(f, ["x0"]) == f.exists(["x0"])
        assert m.false.and_exists(f, ["x0"]).is_false

    def test_image_style_product(self):
        # A 1-bit toggle: relation (y <-> ~x); image of {x=0} is {y=1}.
        m = Manager(vars=["x", "y"])
        x, y = m.var("x"), m.var("y")
        relation = y.equiv(~x)
        image = relation.and_exists(~x, ["x"])
        assert image == y
