"""DOT export."""

from __future__ import annotations

from repro.bdd import Manager, to_dot

from ..helpers import fresh_manager


class TestToDot:
    def test_structure(self):
        m, vs = fresh_manager(2)
        f = vs[0] & vs[1]
        dot = to_dot(f)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == 2 * len(f)
        assert 'label="x0"' in dot and 'label="x1"' in dot

    def test_then_solid_else_dashed(self):
        m, vs = fresh_manager(1)
        dot = to_dot(vs[0])
        dashed = [line for line in dot.splitlines()
                  if "style=dashed" in line]
        solid = [line for line in dot.splitlines()
                 if "->" in line and "dashed" not in line]
        assert len(dashed) == 1
        assert len(solid) == 1

    def test_terminal_only(self):
        m = Manager()
        dot = to_dot(m.true)
        assert '"t1"' in dot

    def test_ranks_group_levels(self, random_functions):
        m, funcs = random_functions
        from repro.bdd.traversal import collect_nodes
        dot = to_dot(funcs[0])
        assert dot.count("rank=same") == \
            len({m.store.level_of(n)
                 for n in collect_nodes(m.store, funcs[0].node)})
