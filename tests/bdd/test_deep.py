"""Deep-structure stress tests for the iterative explicit-stack kernels.

Chain BDDs (one node per level — the conjunction of all variables) and
ladder BDDs (two nodes per level — the parity function) are the
worst-case shapes for recursion depth; Bryant's chain-reduction paper
observes they are common in practice.  Every public operation must
complete on them at CPython's *default* recursion limit: the 2000-level
variant runs in tier-1, the 10000-level variant under ``-m slow``.
"""

from __future__ import annotations

import sys

import pytest

from repro.bdd import Manager, constrain, restrict
from repro.bdd.counting import path_count
from repro.bdd.traversal import iter_paths

DEPTHS = [
    pytest.param(2000, id="tier1-2k"),
    pytest.param(10000, id="slow-10k", marks=pytest.mark.slow),
]


def deep_manager(n: int) -> Manager:
    return Manager([f"x{i}" for i in range(n)])


def chain(manager: Manager, n: int):
    """AND of all n variables: one internal node per level."""
    return manager.cube({f"x{i}": True for i in range(n)})


def ladder(manager: Manager, n: int):
    """XOR of all n variables: two internal nodes per level."""
    from repro.bdd import Function

    even = manager.zero_node  # parity of the variables below is 0
    odd = manager.one_node
    for level in reversed(range(n)):
        even, odd = (manager.mk(level, odd, even),
                     manager.mk(level, even, odd))
    return Function(manager, even)


@pytest.fixture(params=DEPTHS)
def depth(request):
    n = request.param
    # The whole point: these depths must far exceed the recursion limit.
    assert sys.getrecursionlimit() < n
    return n


class TestDeepStructures:
    def test_build_shapes(self, depth):
        m = deep_manager(depth)
        f = chain(m, depth)
        g = ladder(m, depth)
        assert len(f) == depth
        assert len(g) == 2 * depth - 1
        assert f.sat_count() == 1
        assert g.sat_count() == 1 << (depth - 1)

    def test_apply(self, depth):
        m = deep_manager(depth)
        f = chain(m, depth)
        g = ladder(m, depth)
        assert (f & g).is_false if depth % 2 == 0 else (f & g) == f
        assert (f | g).sat_count() == g.sat_count() + (depth % 2 == 0)
        assert (f ^ f).is_false
        assert (g ^ g).is_false
        assert (f - g).sat_count() == (1 if depth % 2 == 0 else 0)

    def test_not(self, depth):
        m = deep_manager(depth)
        g = ladder(m, depth)
        h = ~g
        assert h.sat_count() == 1 << (depth - 1)
        assert ~h == g

    def test_ite(self, depth):
        m = deep_manager(depth)
        f = chain(m, depth)
        g = ladder(m, depth)
        r = f.ite(g, ~g)
        assert r == (f & g) | (~f & ~g)

    def test_quantify(self, depth):
        m = deep_manager(depth)
        f = chain(m, depth)
        evens = [f"x{i}" for i in range(0, depth, 2)]
        e = f.exists(evens)
        assert len(e) == depth - len(evens)
        assert e.sat_count() == 1 << len(evens)
        assert f.forall(["x0"]).is_false
        g = ladder(m, depth)
        assert g.exists(["x0"]).is_true

    def test_and_exists(self, depth):
        m = deep_manager(depth)
        f = chain(m, depth)
        g = ladder(m, depth)
        names = [f"x{i}" for i in range(depth)]
        r = f.and_exists(g, names)
        assert r == (f & g).exists(names)

    def test_constrain_restrict(self, depth):
        m = deep_manager(depth)
        f = chain(m, depth)
        g = ladder(m, depth)
        for op in (constrain, restrict):
            r = op(g, f)
            assert (f & r) == (f & g)
        assert restrict(g, f).support() <= g.support()

    def test_cofactor_and_compose(self, depth):
        m = deep_manager(depth)
        f = chain(m, depth)
        assert len(f.cofactor({"x0": True})) == depth - 1
        assert f.cofactor({"x0": False}).is_false
        swapped = f.compose({"x0": m.var("x1"), "x1": m.var("x0")})
        assert swapped == f  # the chain is symmetric in its variables

    def test_leq(self, depth):
        m = deep_manager(depth)
        f = chain(m, depth)
        g = f | m.var("x0")
        assert f <= g
        assert not (g <= f)

    def test_counting_and_paths(self, depth):
        m = deep_manager(depth)
        f = chain(m, depth)
        assert path_count(m.store, f.node) == depth + 1
        assert sum(1 for _ in iter_paths(m.store, f.node)) == depth + 1
        assert sum(1 for _ in f.iter_minterms()) == 1

    def test_pick_and_eval(self, depth):
        m = deep_manager(depth)
        f = chain(m, depth)
        assignment = f.pick_one()
        assert assignment is not None and all(assignment.values())
        assert f(**assignment)
