"""Traversal helpers: node collection, reference counting, paths."""

from __future__ import annotations

from repro.bdd import Manager
from repro.bdd.traversal import (collect_node_set, collect_nodes,
                                 function_refs, iter_paths,
                                 nodes_by_level, support_levels)

from ..helpers import fresh_manager


class TestCollect:
    def test_excludes_terminals(self):
        m, vs = fresh_manager(2)
        f = vs[0] & vs[1]
        nodes = collect_nodes(m.store, f.node)
        assert len(nodes) == 2
        assert all(not m.store.is_terminal(n) for n in nodes)

    def test_terminal_root(self):
        m = Manager()
        assert collect_nodes(m.store, m.true.node) == []

    def test_shared_subgraph_counted_once(self):
        m, vs = fresh_manager(3)
        shared = vs[2]
        f = m.ite(vs[0], vs[1] & shared, shared)
        nodes = collect_node_set(m.store, f.node)
        assert len(nodes) == len(f)


class TestFunctionRefs:
    def test_root_has_zero_internal_refs(self):
        m, vs = fresh_manager(3)
        f = vs[0] & vs[1] & vs[2]
        refs = function_refs(m.store, f.node)
        assert refs[f.node] == 0

    def test_chain_refs(self):
        m, vs = fresh_manager(3)
        f = vs[0] & vs[1] & vs[2]
        refs = function_refs(m.store, f.node)
        internal = [n for n in collect_nodes(m.store, f.node)
                    if n != f.node]
        assert all(refs[n] == 1 for n in internal)

    def test_shared_node_refs(self):
        m, vs = fresh_manager(3)
        # Both branches of x0 point at the x2 node.
        f = m.ite(vs[0], vs[1] & vs[2], vs[2])
        refs = function_refs(m.store, f.node)
        x2_nodes = [n for n in collect_nodes(m.store, f.node)
                    if m.store.level_of(n) == 2]
        assert len(x2_nodes) == 1
        assert refs[x2_nodes[0]] == 2

    def test_terminal_refs_counted(self):
        m, vs = fresh_manager(2)
        f = vs[0] & vs[1]
        refs = function_refs(m.store, f.node)
        assert refs[m.one_node] == 1
        assert refs[m.zero_node] == 2


class TestLevels:
    def test_sorted_topologically(self, random_functions):
        m, funcs = random_functions
        store = m.store
        for f in funcs:
            ordered = nodes_by_level(store, f.node)
            position = {n: i for i, n in enumerate(ordered)}
            for node in ordered:
                for child in (store.hi_of(node), store.lo_of(node)):
                    if not store.is_terminal(child):
                        assert position[child] > position[node]

    def test_support_levels(self):
        m, vs = fresh_manager(5)
        f = vs[1] ^ vs[4]
        assert support_levels(m.store, f.node) == {1, 4}


class TestIterPaths:
    def test_paths_partition_space(self):
        m, vs = fresh_manager(3)
        f = (vs[0] & vs[1]) | vs[2]
        total = 0
        ones = 0
        for assignment, value in iter_paths(m.store, f.node):
            weight = 2 ** (3 - len(assignment))
            total += weight
            if value:
                ones += weight
        assert total == 8
        assert ones == f.sat_count()
