"""Statistics: geometric means and exact wins/ties scoring."""

from __future__ import annotations


import pytest

from repro.harness import (Measurement, denser, geometric_mean,
                           wins_and_ties)


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_floats(self):
        assert geometric_mean([0.5, 2.0]) == pytest.approx(1.0)

    def test_huge_integers(self):
        values = [10 ** 45, 10 ** 47]
        assert geometric_mean(values) == pytest.approx(1e46, rel=1e-6)

    def test_zero_collapses(self):
        assert geometric_mean([0, 100]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestDenser:
    def test_strict(self):
        a = Measurement(nodes=10, minterms=100)
        b = Measurement(nodes=10, minterms=50)
        assert denser(a, b) == 1
        assert denser(b, a) == -1

    def test_exact_tie_cross_multiplied(self):
        a = Measurement(nodes=3, minterms=6)
        b = Measurement(nodes=5, minterms=10)
        assert denser(a, b) == 0

    def test_huge_values_no_overflow(self):
        a = Measurement(nodes=12345, minterms=10 ** 50)
        b = Measurement(nodes=12346, minterms=10 ** 50)
        assert denser(a, b) == 1


class TestWinsAndTies:
    def test_sole_winner(self):
        rows = [{"a": Measurement(1, 10), "b": Measurement(1, 5)}]
        assert wins_and_ties(rows) == {"a": (1, 0), "b": (0, 0)}

    def test_tie_scored_for_all_best(self):
        rows = [{"a": Measurement(2, 10), "b": Measurement(4, 20),
                 "c": Measurement(1, 1)}]
        score = wins_and_ties(rows)
        assert score["a"] == (0, 1)
        assert score["b"] == (0, 1)
        assert score["c"] == (0, 0)

    def test_accumulates_over_population(self):
        rows = [
            {"a": Measurement(1, 4), "b": Measurement(1, 2)},
            {"a": Measurement(1, 2), "b": Measurement(1, 4)},
            {"a": Measurement(1, 3), "b": Measurement(1, 3)},
        ]
        score = wins_and_ties(rows)
        assert score["a"] == (1, 1)
        assert score["b"] == (1, 1)
