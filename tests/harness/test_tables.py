"""Table formatting."""

from __future__ import annotations

from repro.harness import format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["Method", "nodes"],
                            [["RUA", 30], ["HB", 24]])
        lines = text.splitlines()
        assert lines[0].startswith("Method")
        assert len(lines) == 4
        assert lines[1].startswith("---")

    def test_title(self):
        text = format_table(["a"], [[1]], title="Table 2")
        assert text.splitlines()[0] == "Table 2"

    def test_scientific_formatting(self):
        text = format_table(["m"], [[10 ** 45]])
        assert "e+" in text

    def test_float_formatting(self):
        text = format_table(["d"], [[3.14159]])
        assert "3.1" in text

    def test_small_float_scientific(self):
        text = format_table(["d"], [[0.00001]])
        assert "e-" in text
