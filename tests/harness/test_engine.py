"""Parallel experiment engine: determinism, fault isolation, retry."""

from __future__ import annotations

import os
import time

import pytest

from repro.bdd import Budget, BudgetExceeded, Manager
from repro.harness.engine import (BUDGET, CRASHED, ERROR, OK, TIMEOUT,
                                  Task, WorkerPool, resolve_jobs,
                                  run_tasks)
from repro.harness.experiments import (reachability_row,
                                       simple_approx_rows)
from repro.harness.population import EntrySpec

# ----------------------------------------------------------------------
# Module-level workers (must be picklable by reference)
# ----------------------------------------------------------------------


def square(payload):
    return payload * payload


def raise_on_odd(payload):
    if payload % 2:
        raise ValueError(f"odd payload {payload}")
    return payload


def sleep_for(payload):
    time.sleep(payload)
    return payload


def exit_hard(payload):
    os._exit(9)


def succeed_after_flag(payload):
    """Fails until a sentinel file exists, then creates it and succeeds.

    Used to prove the bounded retry actually re-runs the task: the
    first attempt writes the flag and raises, the retry sees it.
    """
    flag = payload
    if os.path.exists(flag):
        return "second try"
    with open(flag, "w") as fh:
        fh.write("attempted")
    raise RuntimeError("first attempt fails")


def blow_budget(payload):
    """Records the attempt in a sentinel file, then blows a real
    governor budget inside a kernel.  The "ok" payload succeeds."""
    if payload == "ok":
        return "ok"
    with open(payload, "a") as fh:
        fh.write("attempt\n")
    manager = Manager()
    xs = manager.add_vars(*[f"x{i}" for i in range(48)])
    f = xs[0]
    manager.governor.arm(Budget(step_budget=1))
    for i in range(1, 48):
        f = f ^ xs[i]          # enough kernel steps to hit a checkpoint
    return "unreachable"


class TestResolveJobs:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_hook(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_nonpositive_means_all_cores(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-1) >= 1


class TestInlineVsPool:
    def test_inline_results_in_task_order(self):
        run = run_tasks(square, [Task(str(i), i) for i in range(6)],
                        jobs=1)
        assert [o.key for o in run.outcomes] == [str(i)
                                                 for i in range(6)]
        assert [o.result for o in run.outcomes] == [i * i
                                                    for i in range(6)]
        assert run.jobs == 1 and not run.failures

    def test_pool_matches_inline(self):
        tasks = [Task(str(i), i) for i in range(8)]
        inline = run_tasks(square, tasks, jobs=1)
        pooled = run_tasks(square, tasks, jobs=2)
        assert [(o.key, o.result, o.status)
                for o in inline.outcomes] == \
               [(o.key, o.result, o.status) for o in pooled.outcomes]

    def test_results_mapping_and_raise(self):
        run = run_tasks(square, [Task("a", 3), Task("b", 4)], jobs=1)
        assert run.results() == {"a": 9, "b": 16}
        run.raise_on_failure()  # no-op without failures


class TestFaultIsolation:
    def test_error_recorded_and_run_completes(self):
        tasks = [Task(str(i), i) for i in range(4)]
        run = run_tasks(raise_on_odd, tasks, jobs=2, retries=0)
        by_key = {o.key: o for o in run.outcomes}
        assert by_key["0"].status == OK
        assert by_key["1"].status == ERROR
        assert "odd payload 1" in by_key["1"].error
        assert by_key["2"].status == OK
        with pytest.raises(RuntimeError, match="2 task\\(s\\) failed"):
            run.raise_on_failure()

    def test_timeout_kills_slow_task_only(self):
        tasks = [Task("slow", 30.0, timeout=1.0), Task("fast", 0.0)]
        start = time.perf_counter()
        run = run_tasks(sleep_for, tasks, jobs=2, retries=0)
        elapsed = time.perf_counter() - start
        by_key = {o.key: o for o in run.outcomes}
        assert by_key["slow"].status == TIMEOUT
        assert "timed out" in by_key["slow"].error
        assert by_key["fast"].status == OK
        assert elapsed < 15, "timeout did not cut the slow task short"

    def test_crash_captured_with_failing_task_recorded(self):
        tasks = [Task("boom", None), ]
        run = run_tasks(exit_hard, tasks, jobs=2, retries=0)
        outcome = run.outcomes[0]
        assert outcome.status == CRASHED
        assert outcome.error and "exit" in outcome.error.lower()

    def test_crash_does_not_poison_siblings(self):
        tasks = [Task("ok1", 2), Task("boom", None), Task("ok2", 3)]
        run = run_tasks(crash_or_square, tasks, jobs=2, retries=0)
        by_key = {o.key: o for o in run.outcomes}
        assert by_key["ok1"].result == 4
        assert by_key["ok2"].result == 9
        assert by_key["boom"].status == CRASHED

    def test_bounded_retry_then_success(self, tmp_path):
        flag = str(tmp_path / "flag")
        run = run_tasks(succeed_after_flag, [Task("t", flag)], jobs=2,
                        retries=1)
        outcome = run.outcomes[0]
        assert outcome.status == OK
        assert outcome.result == "second try"
        assert outcome.attempts == 2

    def test_retry_exhaustion_marks_failed(self):
        run = run_tasks(raise_on_odd, [Task("t", 1)], jobs=2,
                        retries=2)
        outcome = run.outcomes[0]
        assert outcome.status == ERROR
        assert outcome.attempts == 3


class TestBudgetOutcome:
    """Governor aborts are deterministic and must never be retried."""

    def test_direct_worker_raises(self, tmp_path):
        # The worker really does blow a kernel budget (sanity check
        # that the engine tests below exercise the real path).
        with pytest.raises(BudgetExceeded):
            blow_budget(str(tmp_path / "flag"))

    def test_inline_budget_not_retried(self, tmp_path):
        flag = tmp_path / "flag"
        run = run_tasks(blow_budget, [Task("t", str(flag))], jobs=1,
                        retries=3)
        outcome = run.outcomes[0]
        assert outcome.status == BUDGET
        assert outcome.attempts == 1
        assert "step budget" in outcome.error
        # The sentinel proves the worker ran exactly once.
        assert flag.read_text() == "attempt\n"
        assert run.failures == [outcome]

    def test_pool_budget_not_retried(self, tmp_path):
        flag = tmp_path / "flag"
        run = run_tasks(blow_budget,
                        [Task("t", str(flag)), Task("ok", "ok")],
                        jobs=2, retries=3)
        by_key = {o.key: o for o in run.outcomes}
        assert by_key["t"].status == BUDGET
        assert by_key["t"].attempts == 1
        assert "step budget" in by_key["t"].error
        assert flag.read_text() == "attempt\n"
        # A budget abort is an ordinary failure for siblings: the other
        # task still completes.
        assert by_key["ok"].status == OK


def crash_or_square(payload):
    if payload is None:
        os._exit(9)
    return payload * payload


def report_pid(payload):
    return os.getpid()


class TestWorkerPool:
    """Persistent workers: the property the sharder relies on."""

    def test_workers_persist_across_runs(self):
        with WorkerPool(report_pid, jobs=2) as pool:
            first = pool.run([Task("a", 1), Task("b", 2)])
            pids = pool.worker_pids()
            assert pids and len(pids) <= 2
            second = pool.run([Task("c", 3), Task("d", 4)])
            assert pool.worker_pids() == pids
            # Every task really ran inside the persistent processes.
            for run in (first, second):
                assert not run.failures
                assert set(run.results().values()) <= set(pids)

    def test_run_matches_run_tasks_semantics(self):
        tasks = [Task(str(i), i) for i in range(5)]
        baseline = run_tasks(raise_on_odd, tasks, jobs=2, retries=0)
        with WorkerPool(raise_on_odd, jobs=2, retries=0) as pool:
            pooled = pool.run(tasks)
        assert [(o.key, o.status, o.result) for o in pooled.outcomes] \
            == [(o.key, o.status, o.result) for o in baseline.outcomes]

    def test_crashed_worker_is_replaced(self):
        with WorkerPool(crash_or_square, jobs=1, retries=0) as pool:
            run = pool.run([Task("boom", None)])
            assert run.outcomes[0].status == CRASHED
            # The replacement worker serves the next run.
            run = pool.run([Task("ok", 6)])
            assert run.outcomes[0].result == 36
            assert len(pool.worker_pids()) == 1

    def test_close_tears_down_and_rejects_runs(self):
        pool = WorkerPool(report_pid, jobs=1)
        pool.run([Task("a", 1)])
        assert pool.worker_pids()
        pool.close()
        assert pool.worker_pids() == []
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.run([Task("b", 2)])


# ----------------------------------------------------------------------
# Determinism: parallel rows must equal sequential rows byte for byte
# ----------------------------------------------------------------------

def _strip_floats(row: dict) -> dict:
    """Drop wall-clock fields; everything else must match exactly."""
    return {k: v for k, v in row.items()
            if not isinstance(v, float) and k != "manager_stats"}


class TestDeterminism:
    @pytest.mark.slow
    def test_reachability_rows_parallel_equals_sequential(self):
        payloads = [
            {"name": "am2910", "factory": "am2910", "args": (4, 3),
             "method": "bfs", "deadline": 120.0},
            {"name": "token_ring", "factory": "token_ring",
             "args": (5,), "method": "rua", "threshold": 0,
             "quality": 1.0, "deadline": 120.0},
            {"name": "pipeline", "factory": "pipeline_controller",
             "args": (3, 4), "method": "sp", "threshold": 40,
             "deadline": 120.0},
        ]
        tasks = [Task(f"{p['name']}/{p['method']}", p)
                 for p in payloads]
        sequential = run_tasks(reachability_row, tasks, jobs=1)
        parallel = run_tasks(reachability_row, tasks, jobs=2)
        assert not sequential.failures and not parallel.failures
        seq_rows = [_strip_floats(o.result)
                    for o in sequential.outcomes]
        par_rows = [_strip_floats(o.result) for o in parallel.outcomes]
        assert seq_rows == par_rows

    def test_approx_rows_parallel_equals_sequential(self):
        specs = [
            EntrySpec("multiplier", "mult5_bit5", (5, 5)),
            EntrySpec("dnf", "dnf_small", (14, 12, 5, 20240001)),
        ]
        tasks = [Task(s.name, (s, 30)) for s in specs]
        sequential = run_tasks(simple_approx_rows, tasks, jobs=1)
        parallel = run_tasks(simple_approx_rows, tasks, jobs=2)
        assert not sequential.failures and not parallel.failures
        seq = [[_strip_floats(r) for r in o.result["rows"]]
               for o in sequential.outcomes]
        par = [[_strip_floats(r) for r in o.result["rows"]]
               for o in parallel.outcomes]
        assert seq == par
        assert all(rows for rows in seq), "specs produced no entries"
