"""BENCH_*.json trajectory files and the regression comparator."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.harness.trajectory import (SCHEMA_VERSION, bench_payload,
                                      compare, compare_files,
                                      failure_rows, load_bench,
                                      task_rows, write_bench)


def payload_with(rows, name="t"):
    return bench_payload(name, rows, scale="quick", jobs=2,
                         total_seconds=1.0)


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        rows = [{"key": "a", "nodes": 10, "seconds": 0.5}]
        payload = bench_payload("table9", rows, scale="quick", jobs=3,
                                total_seconds=2.5,
                                failures=[{"key": "b",
                                           "status": "timeout"}])
        path = write_bench(tmp_path / "sub" / "BENCH_table9.json",
                           payload)
        loaded = load_bench(path)
        assert loaded["schema"] == SCHEMA_VERSION
        assert loaded["name"] == "table9"
        assert loaded["scale"] == "quick"
        assert loaded["jobs"] == 3
        assert loaded["rows"] == rows
        assert loaded["failures"][0]["status"] == "timeout"
        assert loaded["python"].count(".") == 2

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "rows": []}))
        with pytest.raises(ValueError, match="schema"):
            load_bench(path)

    def test_rejects_missing_rows(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": SCHEMA_VERSION}))
        with pytest.raises(ValueError, match="rows"):
            load_bench(path)


class TestEngineRowHelpers:
    def test_task_and_failure_rows(self):
        from repro.harness.engine import Task, run_tasks
        from tests.harness.test_engine import raise_on_odd

        run = run_tasks(raise_on_odd, [Task("even", 2), Task("odd", 3)],
                        jobs=1)
        rows = task_rows(run)
        assert [r["key"] for r in rows] == ["task/even", "task/odd"]
        assert rows[0]["status"] == "ok"
        assert isinstance(rows[0]["seconds"], float)
        failures = failure_rows(run)
        assert len(failures) == 1
        assert failures[0]["key"] == "odd"
        assert "odd payload" in failures[0]["error"]


class TestCompare:
    def test_identical_is_ok(self):
        rows = [{"key": "a", "nodes": 5, "seconds": 1.0}]
        report = compare(payload_with(rows), payload_with(rows))
        assert report.ok
        assert "OK" in report.summary()

    def test_time_regression(self):
        base = [{"key": "a", "seconds": 1.0}]
        cur = [{"key": "a", "seconds": 2.0}]
        report = compare(payload_with(base), payload_with(cur),
                         tolerance=1.5)
        assert not report.ok
        assert report.regressions[0].ratio == pytest.approx(2.0)
        assert "REGRESSION" in report.summary()

    def test_tolerance_allows_slack(self):
        base = [{"key": "a", "seconds": 1.0}]
        cur = [{"key": "a", "seconds": 1.4}]
        report = compare(payload_with(base), payload_with(cur),
                         tolerance=1.5)
        assert report.ok

    def test_time_floor_suppresses_micro_rows(self):
        base = [{"key": "a", "seconds": 0.01}]
        cur = [{"key": "a", "seconds": 10.0}]
        report = compare(payload_with(base), payload_with(cur),
                         tolerance=1.5, time_floor=0.05)
        assert report.ok

    def test_deterministic_mismatch_fails(self):
        base = [{"key": "a", "nodes": 5, "states": 100}]
        cur = [{"key": "a", "nodes": 6, "states": 100}]
        report = compare(payload_with(base), payload_with(cur))
        assert not report.ok
        assert report.mismatched[0].mismatches == {"nodes": (5, 6)}
        assert "MISMATCH" in report.summary()

    def test_speedup_is_not_a_mismatch(self):
        base = [{"key": "a", "nodes": 5, "seconds": 2.0}]
        cur = [{"key": "a", "nodes": 5, "seconds": 0.2}]
        report = compare(payload_with(base), payload_with(cur))
        assert report.ok

    def test_missing_row_fails_added_does_not(self):
        base = [{"key": "a", "nodes": 1}, {"key": "b", "nodes": 2}]
        cur = [{"key": "a", "nodes": 1}, {"key": "c", "nodes": 3}]
        report = compare(payload_with(base), payload_with(cur))
        assert report.missing == ["b"]
        assert report.added == ["c"]
        assert not report.ok

    def test_optional_governor_counters_skipped_when_absent(self):
        # Baselines written before the governor existed carry no
        # aborts/degradations fields; rows with the counters must still
        # compare clean against them — in either direction.
        old = [{"key": "a", "nodes": 5}]
        new = [{"key": "a", "nodes": 5, "aborts": 3, "degradations": 1}]
        assert compare(payload_with(old), payload_with(new)).ok
        assert compare(payload_with(new), payload_with(old)).ok

    def test_optional_governor_counters_compared_when_present(self):
        base = [{"key": "a", "aborts": 0, "degradations": 0}]
        cur = [{"key": "a", "aborts": 2, "degradations": 0}]
        report = compare(payload_with(base), payload_with(cur))
        assert not report.ok
        assert report.mismatched[0].mismatches == {"aborts": (0, 2)}

    def test_optional_backend_label_skipped_when_absent(self):
        # Baselines written before pluggable node stores carry no
        # backend field; labelled rows still compare clean against
        # them, but two labelled files must agree.
        old = [{"key": "a", "nodes": 5}]
        new = [{"key": "a", "nodes": 5, "backend": "array"}]
        assert compare(payload_with(old), payload_with(new)).ok
        assert compare(payload_with(new), payload_with(old)).ok
        other = [{"key": "a", "nodes": 5, "backend": "object"}]
        report = compare(payload_with(other), payload_with(new))
        assert not report.ok
        assert report.mismatched[0].mismatches \
            == {"backend": ("object", "array")}

    def test_optional_shard_fields_skipped_when_absent(self):
        # Baselines written before sharded traversal carry no
        # shards/resplits/shard_fallbacks fields; sharded rows still
        # compare clean against them — in either direction — but two
        # sharded files must agree exactly.
        old = [{"key": "a", "states": 100}]
        new = [{"key": "a", "states": 100, "shards": 2, "resplits": 1,
                "shard_fallbacks": 0}]
        assert compare(payload_with(old), payload_with(new)).ok
        assert compare(payload_with(new), payload_with(old)).ok
        other = [{"key": "a", "states": 100, "shards": 2, "resplits": 1,
                  "shard_fallbacks": 3}]
        report = compare(payload_with(other), payload_with(new))
        assert not report.ok
        assert report.mismatched[0].mismatches \
            == {"shard_fallbacks": (3, 0)}

    def test_floats_and_manager_stats_ignored(self):
        base = [{"key": "a", "density": 0.5,
                 "manager_stats": {"nodes": 1}}]
        cur = [{"key": "a", "density": 0.9,
                "manager_stats": {"nodes": 999}}]
        report = compare(payload_with(base), payload_with(cur))
        assert report.ok


class TestCli:
    def _write(self, tmp_path, name, rows):
        return str(write_bench(tmp_path / name, payload_with(rows)))

    def test_cli_ok_exit_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json",
                           [{"key": "a", "nodes": 1, "seconds": 1.0}])
        cur = self._write(tmp_path, "cur.json",
                          [{"key": "a", "nodes": 1, "seconds": 1.1}])
        assert cli_main(["trajectory", base, cur]) == 0
        assert "status: OK" in capsys.readouterr().out

    def test_cli_regression_exit_one(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json",
                           [{"key": "a", "seconds": 1.0}])
        cur = self._write(tmp_path, "cur.json",
                          [{"key": "a", "seconds": 9.0}])
        assert cli_main(["trajectory", base, cur]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_tolerance_flag(self, tmp_path):
        base = self._write(tmp_path, "base.json",
                           [{"key": "a", "seconds": 1.0}])
        cur = self._write(tmp_path, "cur.json",
                          [{"key": "a", "seconds": 9.0}])
        assert cli_main(["trajectory", base, cur,
                         "--tolerance", "10"]) == 0

    def test_cli_missing_file_is_systemexit(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["trajectory", str(tmp_path / "nope.json"),
                      str(tmp_path / "nope2.json")])

    def test_compare_files(self, tmp_path):
        rows = [{"key": "a", "nodes": 2}]
        base = self._write(tmp_path, "base.json", rows)
        cur = self._write(tmp_path, "cur.json", rows)
        assert compare_files(base, cur).ok


def wrap_payload(payload):
    """Module-level engine body (spawn-safe, RPR009)."""
    return {"n": payload}


def times_ten(payload):
    return {"n": payload * 10}


class TestResume:
    """The --resume-from machinery: digest, split, merge."""

    def _partial(self, tmp_path, rows):
        path = tmp_path / "BENCH_partial.json"
        write_bench(path, payload_with(rows))
        return path

    def test_spec_digest_is_stable_and_input_sensitive(self):
        from repro.harness.trajectory import spec_digest

        a = spec_digest(("spec", 300))
        assert a == spec_digest(("spec", 300))
        assert len(a) == 12
        assert a != spec_digest(("spec", 301))

    def test_task_rows_stamp_spec(self):
        from repro.harness.engine import Task, run_tasks
        from repro.harness.trajectory import spec_digest

        run = run_tasks(wrap_payload, [Task("a", 1), Task("b", 2)],
                        jobs=1)
        specs = {"a": spec_digest(1)}
        rows = task_rows(run, specs)
        by_key = {r["key"]: r for r in rows}
        assert by_key["task/a"]["spec"] == spec_digest(1)
        assert "spec" not in by_key["task/b"]

    def test_resume_skips_only_matching_ok_rows(self, tmp_path):
        from repro.harness.engine import Task
        from repro.harness.trajectory import resume_tasks, spec_digest

        tasks = [Task("done", 1), Task("changed", 2),
                 Task("failed", 3), Task("unstamped", 4),
                 Task("new", 5)]
        path = self._partial(tmp_path, [
            {"key": "task/done", "status": "ok",
             "spec": spec_digest(1), "seconds": 0.1, "attempts": 1},
            {"key": "task/changed", "status": "ok",
             "spec": spec_digest(999), "seconds": 0.1, "attempts": 1},
            {"key": "task/failed", "status": "error",
             "spec": spec_digest(3), "seconds": 0.1, "attempts": 2},
            {"key": "task/unstamped", "status": "ok",
             "seconds": 0.1, "attempts": 1},
            {"key": "func-row", "nodes": 17},
        ])
        remaining, previous = resume_tasks(path, tasks)
        assert [t.key for t in remaining] == ["changed", "failed",
                                              "unstamped", "new"]
        assert len(previous) == 5  # verbatim rows, ready to merge

    def test_merge_rows_current_wins_previous_order_kept(self):
        from repro.harness.trajectory import merge_rows

        previous = [{"key": "a", "v": 1}, {"key": "b", "v": 1},
                    {"key": "c", "v": 1}]
        current = [{"key": "b", "v": 2}, {"key": "d", "v": 2}]
        merged = merge_rows(previous, current)
        assert [r["key"] for r in merged] == ["a", "b", "c", "d"]
        assert {r["key"]: r["v"] for r in merged} == {
            "a": 1, "b": 2, "c": 1, "d": 2}

    def test_spec_field_is_optional_in_comparison(self):
        base = payload_with([{"key": "task/a", "status": "ok",
                              "seconds": 0.1, "attempts": 1}])
        stamped = payload_with([{"key": "task/a", "status": "ok",
                                 "seconds": 0.1, "attempts": 1,
                                 "spec": "abc123"}])
        # A freshly stamped run compares clean against a pre-resume
        # baseline (spec is an _OPTIONAL_FIELDS member)...
        assert compare(base, stamped).ok
        # ...but two stamped runs must agree.
        other = payload_with([{"key": "task/a", "status": "ok",
                               "seconds": 0.1, "attempts": 1,
                               "spec": "different"}])
        report = compare(stamped, other)
        assert not report.ok
        assert "spec" in report.mismatched[0].mismatches

    def test_end_to_end_resume_round(self, tmp_path):
        """Simulated interrupted benchmark: half the tasks recorded,
        resume runs the rest, merged file equals a full run's keys."""
        from repro.harness.engine import Task, run_tasks
        from repro.harness.trajectory import (merge_rows, resume_tasks,
                                              spec_digest)

        tasks = [Task(f"t{i}", i) for i in range(4)]
        specs = {t.key: spec_digest(t.payload) for t in tasks}
        first = run_tasks(times_ten, tasks[:2], jobs=1)
        partial_rows = [{"key": f"row/{o.key}", **o.result}
                        for o in first.outcomes] \
            + task_rows(first, specs)
        path = self._partial(tmp_path, partial_rows)

        remaining, previous = resume_tasks(path, tasks)
        assert [t.key for t in remaining] == ["t2", "t3"]
        second = run_tasks(times_ten, remaining, jobs=1)
        merged = merge_rows(previous,
                            [{"key": f"row/{o.key}", **o.result}
                             for o in second.outcomes]
                            + task_rows(second, specs))
        keys = {r["key"] for r in merged}
        assert keys == {f"row/t{i}" for i in range(4)} \
            | {f"task/t{i}" for i in range(4)}
        # A second resume against the merged file finds nothing to do.
        write_bench(path, payload_with(merged))
        remaining, _ = resume_tasks(path, tasks)
        assert remaining == []
