"""Population generation (kept small for test speed)."""

from __future__ import annotations

import pytest

from repro.bdd import Manager
from repro.harness.population import (adder_carry, combinational_population,
                                      hidden_weighted_bit, multiplier_bit,
                                      random_dnf)


class TestGenerators:
    def test_multiplier_bit_semantics(self):
        n, bit = 3, 3
        m = Manager()
        f = multiplier_bit(m, n, bit)
        for a in range(8):
            for b in range(8):
                env = {}
                for i in range(3):
                    env[f"ma{i}"] = bool(a >> i & 1)
                    env[f"mb{i}"] = bool(b >> i & 1)
                assert f(**env) == bool((a * b) >> bit & 1), (a, b)

    def test_hwb_semantics(self):
        m = Manager()
        n = 5
        f = hidden_weighted_bit(m, n)
        for x in range(32):
            bits = [bool(x >> i & 1) for i in range(n)]
            weight = sum(bits)
            expected = bits[weight - 1] if weight else False
            env = {f"h{i}": bits[i] for i in range(n)}
            assert f(**env) == expected, x

    def test_adder_carry_semantics(self):
        m = Manager()
        n = 4
        f = adder_carry(m, n)
        for a in range(16):
            for b in range(16):
                env = {}
                for i in range(n):
                    env[f"aa{i}"] = bool(a >> i & 1)
                    env[f"ab{i}"] = bool(b >> i & 1)
                assert f(**env) == (a + b >= 16), (a, b)

    def test_random_dnf_deterministic(self):
        import random

        m1 = Manager()
        vs1 = m1.add_vars(*[f"r{i}" for i in range(8)])
        f1 = random_dnf(m1, vs1, 5, 3, random.Random(7))
        m2 = Manager()
        vs2 = m2.add_vars(*[f"r{i}" for i in range(8)])
        f2 = random_dnf(m2, vs2, 5, 3, random.Random(7))
        assert f1.sat_count() == f2.sat_count()


class TestPopulation:
    @pytest.fixture(scope="class")
    def small_population(self):
        return combinational_population(min_nodes=50)

    def test_threshold_respected(self, small_population):
        assert all(len(e.function) >= 50 for e in small_population)

    def test_names_unique(self, small_population):
        names = [e.name for e in small_population]
        assert len(names) == len(set(names))

    def test_nonempty(self, small_population):
        assert len(small_population) >= 10
