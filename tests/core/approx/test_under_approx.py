"""bddUnderApprox (UA)."""

from __future__ import annotations

import pytest

from repro.bdd import Manager
from repro.core.approx import bdd_under_approx

from ...helpers import fresh_manager


class TestUnderApprox:
    def test_subset(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert bdd_under_approx(f) <= f

    def test_weight_extremes(self, random_functions):
        m, funcs = random_functions
        f = funcs[0]
        # weight 0: nodes are worthless, nothing is replaced.
        conservative = bdd_under_approx(f, weight=0.0)
        assert conservative == f
        # weight 1: every replacement that saves a node is accepted;
        # still a subset.
        aggressive = bdd_under_approx(f, weight=1.0)
        assert aggressive <= f
        assert len(aggressive) <= len(f)

    def test_weight_monotone_in_minterms(self, random_functions):
        m, funcs = random_functions
        for f in funcs[:4]:
            low = bdd_under_approx(f, weight=0.3)
            high = bdd_under_approx(f, weight=0.9)
            assert high.sat_count() <= low.sat_count()

    def test_invalid_weight(self, random_functions):
        m, funcs = random_functions
        with pytest.raises(ValueError):
            bdd_under_approx(funcs[0], weight=1.5)

    def test_threshold_short_circuits(self, random_functions):
        m, funcs = random_functions
        f = funcs[0]
        assert bdd_under_approx(f, threshold=len(f)) == f

    def test_constants(self):
        m = Manager(vars=["a"])
        assert bdd_under_approx(m.true).is_true
        assert bdd_under_approx(m.false).is_false

    def test_not_necessarily_safe(self):
        # UA is the paper's non-safe method: it may decrease density.
        # We only check that it never violates the subset contract even
        # on adversarial inputs.
        m, vs = fresh_manager(10)
        f = vs[0]
        for v in vs[1:]:
            f = f ^ v
        r = bdd_under_approx(f, weight=0.99)
        assert r <= f
