"""The shared analysis machinery: analyze, flows, nodesSaved."""

from __future__ import annotations

from repro.core.approx.info import (analyze, child_flow, full_count,
                                    nodes_saved)

from ...helpers import fresh_manager


class TestAnalyze:
    def test_counts_and_refs(self):
        m, vs = fresh_manager(3)
        f = vs[0] & vs[1] & vs[2]
        info = analyze(m.store, f.node, 3)
        assert info.size == 3
        assert info.minterms == 1
        assert info.refs[f.node] == 1  # external reference only

    def test_minterms_match_sat_count(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            info = analyze(m.store, f.node, m.num_vars)
            assert info.minterms == f.sat_count()

    def test_full_count_terminals(self):
        m, vs = fresh_manager(4)
        info = analyze(m.store, vs[0].node, 4)
        assert full_count(info, m.one_node) == 16
        assert full_count(info, m.zero_node) == 0


class TestChildFlow:
    def test_adjacent_levels(self):
        m, vs = fresh_manager(3)
        f = vs[0] & vs[1]
        info = analyze(m.store, f.node, 3)
        child = m.store.hi_of(f.node)
        assert child_flow(info, 4, 0, child) == 4

    def test_level_gap_doubles(self):
        m, vs = fresh_manager(4)
        f = vs[0] & vs[3]
        info = analyze(m.store, f.node, 4)
        child = m.store.hi_of(f.node)  # tests x3, two levels below
        assert m.store.level_of(child) == 3
        assert child_flow(info, 1, 0, child) == 4

    def test_terminal_child(self):
        m, vs = fresh_manager(3)
        f = vs[2]
        info = analyze(m.store, f.node, 3)
        assert child_flow(info, 1, 2, m.one_node) == 1
        assert child_flow(info, 2, 0, m.one_node) == 8


class TestNodesSaved:
    def test_chain_fully_dominated(self):
        m, vs = fresh_manager(4)
        f = vs[0] & vs[1] & vs[2] & vs[3]
        info = analyze(m.store, f.node, 4)
        dead = nodes_saved(f.node, info)
        assert len(dead) == 4  # the whole chain dies with the root

    def test_shared_node_survives(self):
        m, vs = fresh_manager(3)
        # x2 node shared between the root's two branches; killing only
        # the then-child leaves it alive through the else path.
        shared = vs[2]
        f = m.ite(vs[0], vs[1] & shared, shared)
        info = analyze(m.store, f.node, 3)
        then_child = m.store.hi_of(f.node)
        dead = nodes_saved(then_child, info)
        assert then_child in dead
        assert shared.node not in dead

    def test_protection_blocks_counting(self):
        m, vs = fresh_manager(3)
        f = vs[0] & vs[1] & vs[2]
        info = analyze(m.store, f.node, 3)
        protected = frozenset({m.store.hi_of(f.node)})
        dead = nodes_saved(f.node, info, protected)
        assert f.node in dead
        assert m.store.hi_of(f.node) not in dead
        # Protection also blocks propagation below.
        assert len(dead) == 1

    def test_root_always_dies(self, random_functions):
        m, funcs = random_functions
        for f in funcs[:4]:
            info = analyze(m.store, f.node, m.num_vars)
            dead = nodes_saved(f.node, info)
            assert f.node in dead
            assert len(dead) == len(f)  # root dominates everything
