"""Safe interval minimization mu(l, u)."""

from __future__ import annotations

import pytest

from repro.core.approx import safe_minimize
from repro.core.approx.minimize import minimize_with_dont_cares

from ...helpers import fresh_manager, random_function


class TestSafeMinimize:
    def test_interval_and_safety(self, random_functions, rng):
        m, funcs = random_functions
        vs = [m.var(f"x{i}") for i in range(12)]
        for f in funcs:
            extra = random_function(m, vs, rng, terms=3)
            lower, upper = f, f | extra
            g = safe_minimize(lower, upper)
            assert lower <= g <= upper
            assert len(g) <= min(len(lower), len(upper))

    def test_degenerate_equal_bounds(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert safe_minimize(f, f) == f

    def test_full_interval(self):
        m, vs = fresh_manager(4)
        g = safe_minimize(m.false, m.true)
        assert len(g) == 0  # a constant

    def test_rejects_non_interval(self, random_functions):
        m, funcs = random_functions
        f = funcs[0]
        narrower = f & m.var("x0")
        if narrower != f:
            with pytest.raises(ValueError):
                safe_minimize(f, narrower)

    def test_cross_manager_rejected(self):
        m1, vs1 = fresh_manager(2)
        m2, vs2 = fresh_manager(2)
        with pytest.raises(ValueError):
            safe_minimize(vs1[0], vs2[0])

    def test_recovers_minterms_in_interval(self):
        # The minimizer may return more minterms than the lower bound —
        # that is the point of C1/C2 compounds.
        m, vs = fresh_manager(8)
        lower = vs[0] & vs[1] & vs[2]
        upper = vs[0]
        g = safe_minimize(lower, upper)
        assert lower <= g <= upper
        assert len(g) <= len(lower)


class TestMinimizeWithDontCares:
    def test_agrees_on_care_set(self, random_functions, rng):
        m, funcs = random_functions
        vs = [m.var(f"x{i}") for i in range(12)]
        for f in funcs[:4]:
            care = random_function(m, vs, rng, terms=4)
            g = minimize_with_dont_cares(f, care)
            assert (care & g) == (care & f)
