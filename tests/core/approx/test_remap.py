"""remapUnderApprox: contracts, safety, internals of the three passes."""

from __future__ import annotations


from repro.bdd import Manager
from repro.bdd.function import Function
from repro.core.approx import remap_over_approx, remap_under_approx
from repro.core.approx.info import analyze
from repro.core.approx.remap import build_result, mark_nodes

from ...helpers import fresh_manager


class TestContract:
    def test_subset(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert remap_under_approx(f) <= f

    def test_safe_at_quality_one(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            r = remap_under_approx(f, threshold=0, quality=1.0)
            assert r.density() >= f.density() - 1e-9

    def test_constant_inputs(self):
        m = Manager(vars=["a"])
        assert remap_under_approx(m.true).is_true
        assert remap_under_approx(m.false).is_false

    def test_nonzero_result_on_nonzero_input(self, random_functions):
        # A safe under-approximation never collapses a satisfiable
        # function to FALSE: that would zero the density.
        m, funcs = random_functions
        for f in funcs:
            assert not remap_under_approx(f).is_false

    def test_threshold_stops_shrinking(self, random_functions):
        m, funcs = random_functions
        f = funcs[0]
        full = remap_under_approx(f, threshold=0)
        capped = remap_under_approx(f, threshold=len(f))
        # With the threshold already met, markNodes stops immediately.
        assert capped == f
        assert len(full) <= len(f)

    def test_quality_monotonicity(self, random_functions):
        # Higher quality keeps more (or equal) minterms.
        m, funcs = random_functions
        for f in funcs[:4]:
            aggressive = remap_under_approx(f, quality=1.0)
            conservative = remap_under_approx(f, quality=2.0)
            assert conservative.sat_count() >= aggressive.sat_count()

    def test_idempotent_at_fixpoint(self, random_functions):
        m, funcs = random_functions
        for f in funcs[:4]:
            r = remap_under_approx(f)
            r2 = remap_under_approx(r)
            assert r2.density() >= r.density() - 1e-9


class TestInternalAccounting:
    def test_minterm_estimate_is_exact(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            info = analyze(m.store, f.node, m.num_vars)
            mark_nodes(m, f.node, info, 0, 1.0)
            result = Function(m, build_result(m, f.node, info))
            assert result.sat_count() == info.minterms

    def test_size_estimate_is_upper_bound(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            info = analyze(m.store, f.node, m.num_vars)
            mark_nodes(m, f.node, info, 0, 1.0)
            result = Function(m, build_result(m, f.node, info))
            assert len(result) <= info.size

    def test_no_marks_reproduces_input(self, random_functions):
        m, funcs = random_functions
        f = funcs[0]
        info = analyze(m.store, f.node, m.num_vars)
        # skip markNodes entirely: buildResult must be the identity
        assert build_result(m, f.node, info) == f.node


class TestReplacementTypes:
    def test_remap_on_unate_node(self):
        # f = x·(y | z) + x'·(y & z): the else child is contained in the
        # then child, so remap keeps the else child.
        m = Manager(vars=["x", "y", "z"])
        x, y, z = (m.var(n) for n in "xyz")
        f = m.ite(x, y | z, y & z)
        r = remap_under_approx(f)
        assert r <= f
        # The and-child is the dense pick here; whatever the decision,
        # safety must hold.
        assert r.density() >= f.density() - 1e-9

    def test_grandchild_shared_then(self):
        # Children of the root test the same variable and share the
        # then-grandchild; the paper replaces f by y·f_tt.
        m = Manager(vars=["x", "y", "a", "b"])
        x, y, a, b = (m.var(n) for n in "xyab")
        shared = a & b
        f_t = m.ite(y, shared, a | b)
        f_e = m.ite(y, shared, ~a & b)
        f = m.ite(x, f_t, f_e)
        r = remap_under_approx(f)
        assert r <= f

    def test_cube_is_kept_whole(self):
        # A single cube is already maximally dense per node; RUA at
        # quality 1 must not lose its minterms entirely.
        m, vs = fresh_manager(6)
        cube = vs[0] & ~vs[1] & vs[2]
        r = remap_under_approx(cube)
        assert not r.is_false
        assert r <= cube


class TestOverApprox:
    def test_superset(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert f <= remap_over_approx(f)

    def test_safe_on_complement(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            o = remap_over_approx(f)
            assert (~o).density() >= (~f).density() - 1e-9

    def test_constant(self):
        m = Manager(vars=["a"])
        assert remap_over_approx(m.false).is_false


class TestSweepBehaviour:
    def test_unreachable_branches_removed(self):
        # Construct a function, then approximate one that shares nodes;
        # dead branches of a replaced region must not survive.
        m, vs = fresh_manager(8)
        bulk = m.true
        for v in vs[:6]:
            bulk = bulk & v
        sliver = ~vs[0] & vs[6] & vs[7] & vs[1] & ~vs[2] & vs[3]
        f = bulk | sliver
        r = remap_under_approx(f)
        assert r <= f
        assert r.density() >= f.density() - 1e-9
