"""Property-based tests of the approximation algorithms (hypothesis).

Every under-approximator must return a subset; every safe algorithm
must not decrease density; over-approximation duals must return
supersets.  Exercised on random DNF-shaped functions where each cube's
width varies, so the approximators see both dense and sparse regions.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.bdd import Manager
from repro.core.approx import (bdd_under_approx, c1, c2,
                               heavy_branch_subset, iterated_remap,
                               over_approx, remap_under_approx,
                               safe_minimize, short_paths_subset)

NVARS = 8
NAMES = [f"w{i}" for i in range(NVARS)]


@st.composite
def dnfs(draw):
    """A DNF as a list of cubes; each cube maps var index -> polarity."""
    n_cubes = draw(st.integers(min_value=1, max_value=6))
    cubes = []
    for _ in range(n_cubes):
        width = draw(st.integers(min_value=1, max_value=4))
        indices = draw(st.permutations(range(NVARS)))
        cube = {}
        for index in indices[:width]:
            cube[index] = draw(st.booleans())
        cubes.append(cube)
    return cubes


def build(manager: Manager, cubes):
    variables = [manager.var(name) for name in NAMES]
    acc = manager.false
    for cube in cubes:
        term = manager.true
        for index, polarity in cube.items():
            literal = variables[index]
            term = term & (literal if polarity else ~literal)
        acc = acc | term
    return acc


@settings(max_examples=60, deadline=None)
@given(dnfs(), st.integers(min_value=0, max_value=20))
def test_every_method_returns_subset(cubes, threshold):
    manager = Manager(vars=NAMES)
    f = build(manager, cubes)
    for alpha in (
            lambda g: heavy_branch_subset(g, threshold),
            lambda g: short_paths_subset(g, threshold),
            lambda g: bdd_under_approx(g, threshold),
            lambda g: remap_under_approx(g, threshold),
            lambda g: c1(g, threshold),
            lambda g: c2(g, threshold=threshold),
            lambda g: iterated_remap(g, threshold=threshold)):
        assert alpha(f) <= f


@settings(max_examples=60, deadline=None)
@given(dnfs())
def test_safe_methods_do_not_decrease_density(cubes):
    manager = Manager(vars=NAMES)
    f = build(manager, cubes)
    base = f.density()
    for alpha in (lambda g: remap_under_approx(g, quality=1.0),
                  lambda g: c1(g),
                  lambda g: iterated_remap(g)):
        assert alpha(f).density() >= base - 1e-9


@settings(max_examples=60, deadline=None)
@given(dnfs())
def test_over_approx_duality(cubes):
    manager = Manager(vars=NAMES)
    f = build(manager, cubes)
    o = over_approx(remap_under_approx, f)
    assert f <= o
    assert (~o).density() >= (~f).density() - 1e-9


@settings(max_examples=60, deadline=None)
@given(dnfs(), dnfs())
def test_safe_minimize_interval(c1_cubes, c2_cubes):
    manager = Manager(vars=NAMES)
    lower = build(manager, c1_cubes)
    upper = lower | build(manager, c2_cubes)
    g = safe_minimize(lower, upper)
    assert lower <= g <= upper
    assert len(g) <= min(len(lower), len(upper))


@settings(max_examples=40, deadline=None)
@given(dnfs(), st.floats(min_value=0.25, max_value=4.0,
                         allow_nan=False))
def test_rua_any_quality_is_subset(cubes, quality):
    manager = Manager(vars=NAMES)
    f = build(manager, cubes)
    r = remap_under_approx(f, quality=quality)
    assert r <= f
    if quality >= 1.0:
        assert r.density() >= f.density() - 1e-9


@settings(max_examples=40, deadline=None)
@given(dnfs())
def test_rua_replacement_ablations_are_subsets(cubes):
    from repro.core.approx.info import (REPLACE_GRANDCHILD,
                                        REPLACE_REMAP, REPLACE_ZERO)

    manager = Manager(vars=NAMES)
    f = build(manager, cubes)
    for kinds in ((REPLACE_ZERO,), (REPLACE_REMAP,),
                  (REPLACE_GRANDCHILD,),
                  (REPLACE_REMAP, REPLACE_ZERO)):
        r = remap_under_approx(f, replacements=kinds)
        assert r <= f
        assert r.density() >= f.density() - 1e-9
