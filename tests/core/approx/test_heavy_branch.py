"""Heavy-branch subsetting."""

from __future__ import annotations

from repro.bdd import Manager
from repro.core.approx import heavy_branch_subset

from ...helpers import fresh_manager


class TestHeavyBranch:
    def test_subset(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            r = heavy_branch_subset(f, max(1, len(f) // 3))
            assert r <= f

    def test_respects_threshold_roughly(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            threshold = max(4, len(f) // 2)
            r = heavy_branch_subset(f, threshold)
            # The heavy subgraph estimate allows slight overshoot from
            # top-string sharing, never more than the string length.
            assert len(r) <= threshold + 2

    def test_no_op_when_within_threshold(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert heavy_branch_subset(f, len(f)) == f

    def test_keeps_heavy_child(self):
        # then-branch has 3 minterms over (y,z), else-branch 1: the
        # string must keep the then side.
        m = Manager(vars=["x", "y", "z"])
        x, y, z = (m.var(n) for n in "xyz")
        f = m.ite(x, y | z, y & z)
        r = heavy_branch_subset(f, 2)
        # The string must descend into the heavy (then) branch of the
        # root, discarding the light (else) side entirely.
        assert r <= (x & (y | z))
        assert r.sat_count() >= 2

    def test_string_shape(self):
        # The paper: "a BDD with a string of nodes at the top, each
        # with one child as the constant 0".
        m, vs = fresh_manager(6)
        f = m.true
        for v in vs:
            f = f & (v | vs[0])
        wide = (vs[0] & vs[1]) | (vs[2] & vs[3]) | (vs[4] & vs[5])
        r = heavy_branch_subset(wide, 3)
        assert r <= wide
        store = m.store
        node = r.node
        zero = m.zero_node
        # walk the top string: nodes with one constant-0 child
        while not store.is_terminal(node) and \
                (store.hi_of(node) == zero or store.lo_of(node) == zero):
            node = store.lo_of(node) if store.hi_of(node) == zero \
                else store.hi_of(node)

    def test_nonzero_result(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert not heavy_branch_subset(f, 1).is_false

    def test_constants(self):
        m = Manager(vars=["a"])
        assert heavy_branch_subset(m.true, 0).is_true
        assert heavy_branch_subset(m.false, 0).is_false
