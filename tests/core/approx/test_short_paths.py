"""Short-path subsetting."""

from __future__ import annotations

import math

from repro.bdd import Manager
from repro.core.approx import short_paths_subset, shortest_path_lengths

from ...helpers import fresh_manager


class TestShortestPathLengths:
    def test_cube_lengths(self):
        m, vs = fresh_manager(4)
        cube = vs[0] & vs[1] & vs[2] & vs[3]
        lengths = shortest_path_lengths(cube)
        # Every node lies on the single ONE-path of length 4.
        assert set(lengths.values()) == {4}

    def test_finite_for_all_nodes(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            lengths = shortest_path_lengths(f)
            assert all(v != math.inf for v in lengths.values())


class TestShortPaths:
    def test_subset(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            r = short_paths_subset(f, max(1, len(f) // 3))
            assert r <= f

    def test_no_op_within_threshold(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert short_paths_subset(f, len(f)) == f

    def test_nonzero_result(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert not short_paths_subset(f, 1).is_false

    def test_hard_threshold_can_return_false(self):
        m, vs = fresh_manager(8)
        f = m.false
        for i in range(0, 8, 2):
            f = f | (vs[i] & vs[i + 1])
        r = short_paths_subset(f, 1, hard=True)
        assert r.is_false or len(r) <= 1

    def test_prefers_large_implicants(self):
        # One 1-literal cube (short path) plus junk: the subset keeps
        # the short path first.
        m, vs = fresh_manager(8)
        big_cube = vs[0]
        junk = vs[1] & ~vs[2] & vs[3] & vs[4] & ~vs[5] & vs[6]
        f = big_cube | junk
        r = short_paths_subset(f, 2)
        assert big_cube <= r

    def test_density_improves_on_mixed_functions(self):
        m, vs = fresh_manager(10)
        f = vs[0] | (vs[1] & vs[2] & vs[3] & vs[4] & vs[5] & vs[6]
                     & vs[7] & vs[8] & vs[9])
        r = short_paths_subset(f, max(1, len(f) // 2))
        assert r.density() >= f.density()

    def test_constants(self):
        m = Manager(vars=["a"])
        assert short_paths_subset(m.true, 0).is_true
        assert short_paths_subset(m.false, 0).is_false
