"""Compound approximation algorithms (Section 2.2)."""

from __future__ import annotations

from repro.core.approx import (c1, c2, chained, iterated_remap, minimized,
                               remap_under_approx, short_paths_subset)


class TestC1:
    def test_subset_and_safe(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            r = c1(f)
            assert r <= f
            assert r.density() >= f.density() - 1e-9

    def test_never_loses_to_rua(self, random_functions):
        # The paper: "C1 never loses to RUA".
        m, funcs = random_functions
        for f in funcs:
            rua = remap_under_approx(f)
            assert c1(f).density() >= rua.density() - 1e-9

    def test_keeps_at_least_rua_minterms(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            rua = remap_under_approx(f)
            assert c1(f).sat_count() >= rua.sat_count()


class TestC2:
    def test_subset(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert c2(f) <= f

    def test_never_loses_to_sp(self, random_functions):
        # The paper: "C2 never loses to SP" (with SP at the same
        # threshold the compound uses internally).
        m, funcs = random_functions
        for f in funcs:
            rua_size = len(remap_under_approx(f))
            sp = short_paths_subset(f, rua_size)
            assert c2(f, sp_threshold=rua_size).density() \
                >= sp.density() - 1e-9

    def test_explicit_threshold(self, random_functions):
        m, funcs = random_functions
        f = funcs[0]
        r = c2(f, sp_threshold=max(1, len(f) // 2))
        assert r <= f


class TestCombinators:
    def test_minimized_wrapper(self, random_functions):
        m, funcs = random_functions
        alpha = minimized(lambda f: remap_under_approx(f))
        for f in funcs[:4]:
            r = alpha(f)
            assert r <= f
            assert r.density() >= f.density() - 1e-9

    def test_chained_is_composition(self, random_functions):
        m, funcs = random_functions
        sp = lambda f: short_paths_subset(f, max(1, len(f) // 2))
        rua = lambda f: remap_under_approx(f)
        combo = chained(rua, sp)
        for f in funcs[:4]:
            assert combo(f) == rua(sp(f))

    def test_chained_preserves_subset(self, random_functions):
        m, funcs = random_functions
        combo = chained(lambda f: remap_under_approx(f),
                        lambda f: short_paths_subset(f, 20))
        for f in funcs[:4]:
            assert combo(f) <= f


class TestIteratedRemap:
    def test_subset_and_safe(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            r = iterated_remap(f)
            assert r <= f
            assert r.density() >= f.density() - 1e-9

    def test_empty_qualities_rejected(self, random_functions):
        import pytest

        m, funcs = random_functions
        with pytest.raises(ValueError):
            iterated_remap(funcs[0], qualities=())

    def test_single_quality_equals_rua(self, random_functions):
        m, funcs = random_functions
        for f in funcs[:4]:
            assert iterated_remap(f, qualities=(1.0,)) \
                == remap_under_approx(f, quality=1.0)
