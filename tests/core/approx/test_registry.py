"""The method registry used by the harness, CLI, and reachability."""

from __future__ import annotations

import pytest

from repro.core.approx import UNDER_APPROXIMATORS, over_approx
from repro.core.decomp import DECOMPOSERS, decompose


class TestUnderApproximatorRegistry:
    def test_expected_methods_present(self):
        assert {"hb", "sp", "ua", "rua", "c1", "c2"} \
            <= set(UNDER_APPROXIMATORS)

    @pytest.mark.parametrize("name", sorted({"hb", "sp", "ua", "rua",
                                             "c1", "c2"}))
    def test_registry_contract(self, name, random_functions):
        m, funcs = random_functions
        alpha = UNDER_APPROXIMATORS[name]
        for f in funcs[:3]:
            r = alpha(f, threshold=max(1, len(f) // 2))
            assert r <= f, name

    def test_uniform_keyword_signature(self, random_functions):
        m, funcs = random_functions
        f = funcs[0]
        for name, alpha in UNDER_APPROXIMATORS.items():
            with pytest.raises(TypeError):
                alpha(f, 1)  # thresholds must be keyword-only

    def test_duplicate_registration_rejected(self):
        from repro.core.approx import register_approximator
        with pytest.raises(ValueError):
            register_approximator("hb")(lambda f, *, threshold=0: f)

    @pytest.mark.parametrize("name", ["hb", "sp", "rua"])
    def test_over_approx_wrapper(self, name, random_functions):
        m, funcs = random_functions
        alpha = UNDER_APPROXIMATORS[name]
        for f in funcs[:3]:
            o = over_approx(alpha, f, threshold=0 if name == "rua"
                            else max(1, len(f) // 2))
            assert f <= o, name


class TestDecomposerRegistry:
    def test_expected_methods(self):
        assert set(DECOMPOSERS) == {"cofactor", "disjoint", "band"}

    def test_unknown_method_rejected(self, random_functions):
        m, funcs = random_functions
        with pytest.raises(ValueError):
            decompose(funcs[0], "nope")

    @pytest.mark.parametrize("method", ["cofactor", "disjoint", "band"])
    def test_dispatch(self, method, random_functions):
        m, funcs = random_functions
        g, h = decompose(funcs[0], method)
        assert (g & h) == funcs[0]
