"""McMillan's canonical conjunctive decomposition."""

from __future__ import annotations

from repro.bdd import Manager
from repro.core.decomp import conjoin, mcmillan_decompose

from ...helpers import fresh_manager


class TestMcMillan:
    def test_conjunction_identity(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert conjoin(mcmillan_decompose(f)) == f

    def test_factor_count_bounded_by_support(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            assert len(mcmillan_decompose(f)) <= len(f.support()) + 1

    def test_canonical(self):
        m, vs = fresh_manager(6)
        f1 = (vs[0] & vs[3]) | (vs[5] & ~vs[2])
        f2 = ~(~(vs[0] & vs[3]) & ~(vs[5] & ~vs[2]))
        assert f1 == f2
        assert mcmillan_decompose(f1) == mcmillan_decompose(f2)

    def test_false(self):
        m = Manager(vars=["a"])
        factors = mcmillan_decompose(m.false)
        assert conjoin(factors).is_false

    def test_true(self):
        m = Manager(vars=["a"])
        factors = mcmillan_decompose(m.true)
        assert conjoin(factors).is_true

    def test_untrimmed_has_one_factor_per_variable(self,
                                                   random_functions):
        m, funcs = random_functions
        for f in funcs[:4]:
            factors = mcmillan_decompose(f, trim=False)
            assert len(factors) == len(f.support())

    def test_factors_depend_on_prefix_only(self, random_functions):
        # Factor i only mentions the first i support variables.
        m, funcs = random_functions
        for f in funcs[:4]:
            support = sorted(f.support(), key=m.level_of_var)
            factors = mcmillan_decompose(f, trim=False)
            for i, factor in enumerate(factors, start=1):
                allowed = set(support[:i])
                assert factor.support() <= allowed

    def test_cube_decomposition_literal_factors(self):
        m, vs = fresh_manager(4)
        cube = vs[0] & ~vs[2] & vs[3]
        factors = mcmillan_decompose(cube)
        assert conjoin(factors) == cube
        # A cube splits into its literals.
        assert all(len(factor) == 1 for factor in factors)

    def test_empty_factor_list_guard(self):
        import pytest

        with pytest.raises(ValueError):
            conjoin([])
