"""Property-based tests of the decomposition algorithms (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.bdd import Manager
from repro.bdd.traversal import collect_nodes
from repro.core.decomp import (band_points, cofactor_decompose,
                               conjoin, decompose_at_points,
                               disjoint_points, mcmillan_decompose)

NVARS = 8
NAMES = [f"d{i}" for i in range(NVARS)]


@st.composite
def dnfs(draw):
    n_cubes = draw(st.integers(min_value=1, max_value=6))
    cubes = []
    for _ in range(n_cubes):
        width = draw(st.integers(min_value=1, max_value=4))
        indices = draw(st.permutations(range(NVARS)))
        cubes.append({i: draw(st.booleans()) for i in indices[:width]})
    return cubes


def build(manager: Manager, cubes):
    variables = [manager.var(name) for name in NAMES]
    acc = manager.false
    for cube in cubes:
        term = manager.true
        for index, polarity in cube.items():
            term = term & (variables[index] if polarity
                           else ~variables[index])
        acc = acc | term
    return acc


@settings(max_examples=60, deadline=None)
@given(dnfs(), st.booleans())
def test_cofactor_identity(cubes, conjunctive):
    manager = Manager(vars=NAMES)
    f = build(manager, cubes)
    g, h = cofactor_decompose(f, conjunctive=conjunctive)
    recombined = (g & h) if conjunctive else (g | h)
    assert recombined == f


@settings(max_examples=60, deadline=None)
@given(dnfs(), st.randoms(use_true_random=False), st.booleans())
def test_point_decomposition_identity(cubes, rng, conjunctive):
    manager = Manager(vars=NAMES)
    f = build(manager, cubes)
    nodes = collect_nodes(f.manager.store, f.node)
    k = rng.randint(0, min(4, len(nodes)))
    points = set(rng.sample(nodes, k)) if k else set()
    g, h = decompose_at_points(f, points, conjunctive=conjunctive)
    recombined = (g & h) if conjunctive else (g | h)
    assert recombined == f


@settings(max_examples=40, deadline=None)
@given(dnfs())
def test_selector_identity(cubes):
    manager = Manager(vars=NAMES)
    f = build(manager, cubes)
    for selector in (band_points, disjoint_points):
        g, h = decompose_at_points(f, selector(f))
        assert (g & h) == f


@settings(max_examples=60, deadline=None)
@given(dnfs())
def test_mcmillan_identity_and_canonicity(cubes):
    manager = Manager(vars=NAMES)
    f = build(manager, cubes)
    factors = mcmillan_decompose(f)
    assert conjoin(factors) == f
    # Rebuilding the same function another way yields the same factors.
    again = mcmillan_decompose(build(manager, list(reversed(cubes))))
    if build(manager, list(reversed(cubes))) == f:
        assert again == factors
