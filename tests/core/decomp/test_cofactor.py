"""Cofactor-based decomposition (Equation 1)."""

from __future__ import annotations

import pytest

from repro.bdd import Manager
from repro.core.decomp import (best_split_variable, cofactor_decompose,
                               cofactor_decompose_k, cofactor_sizes)

from ...helpers import fresh_manager


class TestCofactorSizes:
    def test_sizes_match_direct_cofactors(self, random_functions):
        m, funcs = random_functions
        for f in funcs[:4]:
            sizes = cofactor_sizes(f)
            for name, (hi_size, lo_size) in sizes.items():
                assert hi_size == len(f.cofactor({name: True}))
                assert lo_size == len(f.cofactor({name: False}))

    def test_only_support_variables(self, random_functions):
        m, funcs = random_functions
        for f in funcs[:4]:
            assert set(cofactor_sizes(f)) == f.support()


class TestBestSplit:
    def test_minimizes_larger_cofactor(self, random_functions):
        m, funcs = random_functions
        for f in funcs[:4]:
            best = best_split_variable(f)
            sizes = cofactor_sizes(f)
            best_value = max(sizes[best])
            assert all(max(pair) >= best_value
                       for pair in sizes.values())

    def test_constant_rejected(self):
        m = Manager(vars=["a"])
        with pytest.raises(ValueError):
            best_split_variable(m.true)


class TestEquationOne:
    def test_conjunctive_identity(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            g, h = cofactor_decompose(f)
            assert (g & h) == f

    def test_disjunctive_identity(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            g, h = cofactor_decompose(f, conjunctive=False)
            assert (g | h) == f

    def test_explicit_variable(self):
        m, vs = fresh_manager(4)
        f = (vs[0] & vs[1]) | (vs[2] & vs[3])
        g, h = cofactor_decompose(f, variable="x2")
        assert (g & h) == f
        # Equation 1 exactly: g = x2 + f_{x2'}, h = x2' + f_{x2}.
        x2 = vs[2]
        assert g == (x2 | f.cofactor({"x2": False}))
        assert h == (~x2 | f.cofactor({"x2": True}))

    def test_factors_smaller_than_f_typically(self, random_functions):
        m, funcs = random_functions
        smaller = 0
        for f in funcs:
            g, h = cofactor_decompose(f)
            if max(len(g), len(h)) < len(f):
                smaller += 1
        assert smaller >= len(funcs) // 2

    def test_constant_input(self):
        m = Manager(vars=["a"])
        g, h = cofactor_decompose(m.true)
        assert (g & h).is_true
        g, h = cofactor_decompose(m.false, conjunctive=False)
        assert (g | h).is_false


class TestKWay:
    def test_partition_covers(self, random_functions):
        m, funcs = random_functions
        for f in funcs[:4]:
            parts = cofactor_decompose_k(f, 2)
            union = m.false
            for part in parts:
                union = union | part
            assert union == f
            assert len(parts) <= 4

    def test_conjunctive_k_way(self, random_functions):
        m, funcs = random_functions
        f = funcs[0]
        parts = cofactor_decompose_k(f, 2, conjunctive=True)
        product = m.true
        for part in parts:
            product = product & part
        assert product == f

    def test_k_zero(self, random_functions):
        m, funcs = random_functions
        assert cofactor_decompose_k(funcs[0], 0) == [funcs[0]]

    def test_negative_k(self, random_functions):
        m, funcs = random_functions
        with pytest.raises(ValueError):
            cofactor_decompose_k(funcs[0], -1)
