"""Band and Disjoint decomposition-point selectors."""

from __future__ import annotations

import pytest

from repro.bdd import Manager
from repro.bdd.counting import height_map
from repro.core.decomp import (band_points, disjoint_points,
                               score_disjointness)

from ...helpers import fresh_manager


class TestBand:
    def test_band_heights_within_bounds(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            heights = height_map(m.store, f.node)
            total = heights[f.node]
            for node in band_points(f, 0.3, 0.7):
                assert 0.3 * total <= heights[node] <= 0.7 * total

    def test_full_band_is_all_nodes(self, random_functions):
        m, funcs = random_functions
        for f in funcs[:4]:
            assert len(band_points(f, 0.0, 1.0)) == len(f)

    def test_empty_band_possible(self, random_functions):
        m, funcs = random_functions
        f = funcs[0]
        # A degenerate sliver of the band may select nothing.
        points = band_points(f, 0.49999, 0.50001)
        assert isinstance(points, set)

    def test_invalid_bounds(self, random_functions):
        m, funcs = random_functions
        with pytest.raises(ValueError):
            band_points(funcs[0], 0.7, 0.3)

    def test_constant(self):
        m = Manager(vars=["a"])
        assert band_points(m.true) == set()
        assert band_points(m.false) == set()

    def test_single_variable(self):
        # One internal node at height 1: the default band [0.35, 0.65]
        # excludes it (relative height 1.0), the full band keeps it.
        m = Manager(vars=["a"])
        a = m.var("a")
        assert band_points(a) == set()
        assert band_points(a, 0.0, 1.0) == {a.node}
        assert band_points(~a, 1.0, 1.0) == {(~a).node}

    def test_band_boundaries_inclusive(self):
        m = Manager(vars=["a", "b"])
        f = m.var("a") & m.var("b")  # heights 2 (root) and 1 (child)
        assert band_points(f, 0.5, 0.5) == {m.store.lo_of(f.node)} \
            or band_points(f, 0.5, 0.5) == {m.store.hi_of(f.node)}
        assert len(band_points(f, 0.5, 1.0)) == 2


class TestDisjointScore:
    def test_disjoint_children(self):
        m, vs = fresh_manager(6)
        # Children over disjoint variable sets share nothing.
        f = m.ite(vs[0], vs[1] & vs[2], vs[4] ^ vs[5])
        score = score_disjointness(m.store, f.node)
        assert score.sharing == 0.0
        assert score.balance >= 1.0

    def test_shared_children(self):
        m, vs = fresh_manager(4)
        shared = vs[2] & vs[3]
        f = m.ite(vs[0], shared & vs[1], shared)
        hi = m.store.hi_of(f.node)
        score = score_disjointness(m.store, f.node)
        assert score.sharing > 0.0
        assert hi is not None


class TestDisjointPoints:
    def test_returns_nonempty_for_internal(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            points = disjoint_points(f)
            assert points
            # All points are nodes of f with internal children.
            from repro.bdd.traversal import collect_node_set
            nodes = collect_node_set(m.store, f.node)
            assert points <= nodes

    def test_candidate_cap(self, random_functions):
        m, funcs = random_functions
        f = funcs[0]
        few = disjoint_points(f, max_candidates=2)
        assert len(few) <= 2

    def test_constant(self):
        m = Manager(vars=["a"])
        assert disjoint_points(m.true) == set()
        assert disjoint_points(m.false) == set()

    def test_single_variable_has_no_candidates(self):
        # Both children of the only internal node are terminals, so the
        # candidate pool is empty and the selector returns no points
        # (there is nothing to decompose at).
        m = Manager(vars=["a"])
        assert disjoint_points(m.var("a")) == set()

    def test_no_candidate_clears_band(self, random_functions):
        # A sliver band above every internal node's relative height
        # yields no candidates at all — distinct from the "candidates
        # exist but none pass the limits" fallback, which returns the
        # single best scorer.
        m, funcs = random_functions
        for f in funcs[:3]:
            assert disjoint_points(f, band=(1.1, 1.2)) == set()

    def test_strict_limits_fall_back_to_best(self, random_functions):
        m, funcs = random_functions
        f = funcs[0]
        points = disjoint_points(f, sharing_limit=-1.0,
                                 balance_limit=0.5)
        assert len(points) == 1
