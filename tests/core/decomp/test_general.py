"""Figure 5: generalized decomposition at arbitrary points."""

from __future__ import annotations

from repro.bdd import Manager
from repro.bdd.traversal import collect_nodes
from repro.core.decomp import band_points, decompose_at_points

from ...helpers import fresh_manager


class TestDecomposeAtPoints:
    def test_conjunctive_identity_any_points(self, random_functions,
                                             rng):
        m, funcs = random_functions
        for f in funcs:
            nodes = collect_nodes(m.store, f.node)
            points = set(rng.sample(nodes, min(5, len(nodes))))
            g, h = decompose_at_points(f, points)
            assert (g & h) == f

    def test_disjunctive_identity_any_points(self, random_functions,
                                             rng):
        m, funcs = random_functions
        for f in funcs:
            nodes = collect_nodes(m.store, f.node)
            points = set(rng.sample(nodes, min(5, len(nodes))))
            g, h = decompose_at_points(f, points, conjunctive=False)
            assert (g | h) == f

    def test_empty_points_identity(self, random_functions):
        # With no decomposition points the combine steps may still
        # shuffle the (f, 1) pairs between the two sides, but the
        # product is always f.
        m, funcs = random_functions
        for f in funcs[:4]:
            g, h = decompose_at_points(f, set())
            assert (g & h) == f

    def test_root_as_point_is_equation_one(self):
        m, vs = fresh_manager(4)
        f = (vs[0] & vs[1]) | (vs[0] & vs[2] & vs[3])
        g, h = decompose_at_points(f, {f.node})
        x = m.var(f.var)
        assert g == (x | f.lo)
        assert h == (~x | f.hi)
        assert (g & h) == f

    def test_terminal_input(self):
        m = Manager(vars=["a"])
        g, h = decompose_at_points(m.true, set())
        assert (g & h).is_true
        g, h = decompose_at_points(m.false, set(), conjunctive=False)
        assert (g | h).is_false

    def test_all_nodes_as_points(self, random_functions):
        m, funcs = random_functions
        for f in funcs[:4]:
            points = set(collect_nodes(m.store, f.node))
            g, h = decompose_at_points(f, points)
            assert (g & h) == f

    def test_band_points_identity(self, random_functions):
        m, funcs = random_functions
        for f in funcs:
            g, h = decompose_at_points(f, band_points(f))
            assert (g & h) == f
