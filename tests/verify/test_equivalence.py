"""Sequential equivalence checking."""

from __future__ import annotations

import pytest

from repro.fsm import CircuitBuilder
from repro.fsm.benchmarks import counter
from repro.verify.equivalence import check_equivalence, product_machine


def gray_counter(width: int):
    """A counter that outputs Gray code but counts in binary inside."""
    b = CircuitBuilder(f"gray{width}")
    en = b.input("en")
    bits = b.latches("q", width)
    b.set_next_vector(bits, b.mux_vector(en, b.increment(bits), bits))
    b.output("msb", bits[-1])
    return b.build()


def counter_different_encoding(width: int):
    """Counts down internally; the MSB output differs after a while."""
    b = CircuitBuilder(f"down{width}")
    en = b.input("en")
    bits = b.latches("q", width)
    b.set_next_vector(bits, b.mux_vector(en, b.decrement(bits), bits))
    b.output("msb", bits[-1])
    return b.build()


class TestProductMachine:
    def test_structure(self):
        product = product_machine(counter(3), counter(3))
        assert product.num_latches == 6
        assert set(product.outputs) == {"eq_msb"}
        assert product.inputs == ["en"]

    def test_mismatched_inputs_rejected(self):
        b = CircuitBuilder("other")
        b.input("x")
        q = b.latch("q")
        b.set_next(q, q)
        b.output("msb", q)
        with pytest.raises(ValueError):
            product_machine(counter(3), b.build())

    def test_mismatched_outputs_rejected(self):
        b = CircuitBuilder("other")
        b.input("en")
        q = b.latch("q")
        b.set_next(q, q)
        b.output("different", q)
        with pytest.raises(ValueError):
            product_machine(counter(3), b.build())


class TestCheckEquivalence:
    def test_identical_circuits_equivalent(self):
        result = check_equivalence(counter(3), counter(3))
        assert result.equivalent

    def test_renamed_copy_equivalent(self):
        result = check_equivalence(counter(3), gray_counter(3))
        assert result.equivalent

    def test_up_vs_down_counter_differ(self):
        result = check_equivalence(counter(3),
                                   counter_different_encoding(3))
        assert not result.equivalent
        assert result.failing_output == "eq_msb"
        assert result.witness  # a concrete product state

    def test_witness_actually_distinguishes(self):
        left = counter(3)
        right = counter_different_encoding(3)
        result = check_equivalence(left, right)
        state = result.witness
        left_state = {k[2:]: v for k, v in state.items()
                      if k.startswith("L_")}
        right_state = {k[2:]: v for k, v in state.items()
                       if k.startswith("R_")}
        outs_l, _ = left.simulate({"en": False}, left_state)
        outs_r, _ = right.simulate({"en": False}, right_state)
        assert outs_l["msb"] != outs_r["msb"]

    def test_bounded_check(self):
        # With zero iterations only the reset state is examined, where
        # both counters output the same MSB: bounded verdict.
        result = check_equivalence(counter(4),
                                   counter_different_encoding(4),
                                   max_iterations=0)
        assert result.equivalent  # bounded verdict
        # One step in, the down-counter's MSB already differs.
        result = check_equivalence(counter(4),
                                   counter_different_encoding(4),
                                   max_iterations=1)
        assert not result.equivalent
