"""Invariant checking with counterexample traces."""

from __future__ import annotations


from repro.core.approx import remap_under_approx
from repro.fsm import encode
from repro.fsm.benchmarks import counter, token_ring
from repro.reach import TransitionRelation
from repro.verify import (check_invariant, hunt_invariant_violation,
                          prove_by_over_approximation)


def counter_setup(width: int):
    encoded = encode(counter(width))
    tr = TransitionRelation(encoded)
    return encoded, tr


class TestCheckInvariant:
    def test_holding_invariant(self):
        encoded, tr = counter_setup(3)
        # Trivially true: some state bit is 0 or 1.
        q0 = encoded.manager.var("q0")
        result = check_invariant(encoded, tr, q0 | ~q0)
        assert result.holds
        assert result.trace == []

    def test_violation_with_trace(self):
        encoded, tr = counter_setup(3)
        # "The counter never reaches 5" is false; 5 = 101.
        manager = encoded.manager
        five = manager.cube({"q0": True, "q1": False, "q2": True})
        result = check_invariant(encoded, tr, ~five)
        assert not result.holds
        assert len(result.trace) == 6  # reset 0 .. 5, one per step
        assert result.trace[0] == {"q0": False, "q1": False,
                                   "q2": False}
        assert result.trace[-1] == {"q0": True, "q1": False,
                                    "q2": True}

    def test_trace_is_connected(self):
        encoded, tr = counter_setup(3)
        circuit = encoded.circuit
        manager = encoded.manager
        target = manager.cube({"q0": False, "q1": True, "q2": True})
        result = check_invariant(encoded, tr, ~target)
        assert not result.holds
        # Each consecutive pair must be one circuit step apart for some
        # input.
        for before, after in zip(result.trace, result.trace[1:]):
            found = False
            for en in (False, True):
                _, nxt = circuit.simulate({"en": en}, before)
                if nxt == after:
                    found = True
            assert found, (before, after)

    def test_violation_in_reset_state(self):
        encoded, tr = counter_setup(2)
        zero = encoded.manager.cube({"q0": False, "q1": False})
        result = check_invariant(encoded, tr, ~zero)
        assert not result.holds
        assert len(result.trace) == 1

    def test_max_iterations_truncates(self):
        encoded, tr = counter_setup(4)
        target = encoded.manager.cube(
            {"q0": True, "q1": True, "q2": True, "q3": True})
        result = check_invariant(encoded, tr, ~target,
                                 max_iterations=3)
        # Not enough steps to see the violation: reported as holding
        # within the bound.
        assert result.holds
        assert result.iterations == 3


class TestHunt:
    def test_finds_violation(self):
        encoded, tr = counter_setup(3)
        manager = encoded.manager
        six = manager.cube({"q0": False, "q1": True, "q2": True})
        result = hunt_invariant_violation(
            encoded, tr, ~six,
            lambda f, *, threshold=0: remap_under_approx(f, threshold))
        assert not result.holds
        assert result.trace[0] == {"q0": False, "q1": True,
                                   "q2": True}

    def test_proves_when_complete(self):
        encoded = encode(token_ring(3))
        tr = TransitionRelation(encoded)
        # The token stays one-hot: t0+t1+t2 == 1 always.
        m = encoded.manager
        t = [m.var(f"t{i}") for i in range(3)]
        one_hot = (t[0] & ~t[1] & ~t[2]) | (~t[0] & t[1] & ~t[2]) \
            | (~t[0] & ~t[1] & t[2])
        result = hunt_invariant_violation(
            encoded, tr, one_hot,
            lambda f, *, threshold=0: remap_under_approx(f, threshold))
        assert result.holds


class TestOverApproxProof:
    def test_proves_trivial_invariant(self):
        encoded, tr = counter_setup(3)
        q0 = encoded.manager.var("q0")
        result = prove_by_over_approximation(encoded, tr, q0 | ~q0)
        assert result is not None and result.holds

    def test_inconclusive_on_violated(self):
        encoded, tr = counter_setup(3)
        five = encoded.manager.cube({"q0": True, "q1": False,
                                     "q2": True})
        assert prove_by_over_approximation(encoded, tr, ~five) is None
